//! The live network state: active flows, their rates, and byte accounting.
//!
//! [`FlowNet`] is a *pure state machine* — it never schedules events. The
//! simulation engine drives it with this contract:
//!
//! 1. call [`FlowNet::advance_to`] to integrate transferred bytes up to the
//!    current instant;
//! 2. mutate the flow set ([`FlowNet::start_flow`] / [`FlowNet::remove_flow`]);
//! 3. call [`FlowNet::recompute`] to refresh max-min fair rates;
//! 4. ask [`FlowNet::next_completion`] for the earliest projected flow
//!    completion and schedule a single event there (re-doing steps 1–4 when
//!    it fires or whenever the flow set changes).
//!
//! # Incremental rate engine
//!
//! Every mutation marks the links it touches *dirty*. [`FlowNet::recompute`]
//! then restricts progressive filling to the connected component(s) of the
//! flow–link sharing graph that contain a dirty link: max-min fair rates of
//! a component depend only on that component's flows and links, so flows in
//! untouched components keep their rates verbatim. A single flow departing
//! from an isolated rack therefore costs `O(component)`, not `O(network)`.
//! [`FlowNet::full_recompute`] forces the global problem, and in debug
//! builds every recompute is cross-checked against the retained reference
//! allocator ([`max_min_fair`]).
//!
//! Completion lookup is indexed: a lazy-deletion binary heap keyed by
//! projected completion time holds one entry per (flow, rate-change), and
//! entries are invalidated by a per-flow rate epoch. [`FlowNet::advance_to`]
//! touches only *metered* flows with a nonzero allocated rate (see
//! [`FlowNet::meter_sources_only`]).
//!
//! # Layered CBR solve
//!
//! CBR (background) flows don't compete — their rates depend only on
//! requested rates and link capacities (the clamp), never on adaptive
//! traffic. They are therefore solved in their own layer, refreshed only
//! when a CBR input changes, and handed to the adaptive region solve as
//! pre-committed per-link load. A recompute triggered by adaptive churn
//! (the common case: a shuffle fetch starting or finishing) never touches
//! a background flow at all.
//!
//! # Relaxed-order mode
//!
//! [`FlowNet::set_relaxed_order`] switches byte accounting from eager
//! per-advance integration to *lazy integration at observation points*:
//! each flow carries a `(rate, since)` segment and each source node a
//! `(committed, rate_sum, since)` accumulator, folded analytically only
//! when a rate changes, a completion fires, or a counter is read. This
//! removes the order dependence that pinned the exact engine's region
//! walk (bytes no longer accumulate in BFS discovery order), which buys
//! three things:
//!
//! * **O(touched) advancement** — [`FlowNet::advance_to`] pops only due
//!   completion projections instead of integrating every active flow;
//! * **deferred solves** — mutators assign feasible provisional rates
//!   (new flows get their path's residual capacity), so a driver may
//!   batch several mutations before one [`FlowNet::recompute`];
//! * **component-parallel solves** — the dirty set is split into
//!   connected components solved independently (optionally on scoped
//!   worker threads); rates are written back in canonical flow-id order,
//!   so results are bitwise identical for *any* worker count.
//!
//! Relaxed results match the exact path within a small relative
//! tolerance (see `examples/refcheck.rs --tolerance`), not byte for
//! byte; with the mode off, the exact path is untouched.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use pythia_des::{SimDuration, SimTime};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};

use crate::fairshare::{max_min_fair, Allocation, FairShareWorkspace, FlowPath, CBR_SHARE_LIMIT};
use crate::flow::{FlowId, FlowKind, FlowSpec};
use crate::routing::Path;
use crate::topology::{LinkId, NodeId, Topology};

/// A flow currently in the network.
#[derive(Debug, Clone)]
pub struct ActiveFlow {
    /// The flow's descriptor (5-tuple, size, kind).
    pub spec: FlowSpec,
    /// The path it currently rides.
    pub path: Path,
    /// Bytes still to transfer (`None` ⇒ unbounded).
    pub remaining_bytes: Option<f64>,
    /// Bytes moved so far.
    pub transferred_bytes: f64,
    /// Current allocated rate (bits/sec); valid as of the last `recompute`.
    pub rate_bps: f64,
    /// When the flow entered the network.
    pub started_at: SimTime,
}

impl ActiveFlow {
    /// A bounded flow whose byte count has reached zero.
    pub fn is_complete(&self) -> bool {
        matches!(self.remaining_bytes, Some(r) if r <= 0.0)
    }
}

/// Final accounting for a removed flow.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The removed flow's id.
    pub id: FlowId,
    /// Its descriptor.
    pub spec: FlowSpec,
    /// The path it was on at removal.
    pub path: Path,
    /// Total bytes it moved.
    pub transferred_bytes: f64,
    /// When it entered the network.
    pub started_at: SimTime,
    /// When it was removed.
    pub ended_at: SimTime,
}

const NONE_U32: u32 = u32::MAX;

/// Engine-internal bookkeeping kept alongside the public [`ActiveFlow`].
struct FlowSlot {
    id: FlowId,
    flow: ActiveFlow,
    /// Whether the flow currently contributes load (present in the
    /// flow–link incidence lists). Completed flows are unlinked.
    linked: bool,
    /// Index into `FlowNet::active`, or `NONE_U32`.
    active_pos: u32,
    /// Whether this flow's byte counters are observable (bounded, or
    /// sourced at a metered node). Unmetered flows are never integrated.
    metered: bool,
    /// Bumped whenever `rate_bps` changes; completion-heap entries carry
    /// the epoch they were projected under and die with it.
    rate_epoch: u64,
    /// Relaxed mode: the instant `remaining`/`transferred` were last
    /// folded to; the flow's rate has been constant since. Unused (and
    /// never read) by the exact path.
    since: SimTime,
}

/// One incidence-list entry: flow `slot` crosses this link as its `k`-th
/// path hop.
#[derive(Clone, Copy)]
struct LinkEntry {
    slot: u32,
    k: u32,
}

/// Per-link incidence lists packed into one arena.
///
/// Region discovery walks the lists of every link it pulls in — with one
/// heap `Vec` per link those walks were a cache miss per link. Here every
/// list lives in a segment of a single backing vector (the whole working
/// set is a few tens of KB, so it stays cache-resident), and a full
/// segment is migrated to a doubled one at the tail on overflow. The old
/// segment is abandoned, which is fine: a link only migrates when it
/// exceeds its historical peak, so the backing length is bounded by a
/// small multiple of peak total incidence, independent of run length.
///
/// `push` appends and `swap_remove` backfills with the last element —
/// bit-for-bit the order semantics the per-link `Vec`s had, which matters
/// because list order feeds region discovery order and therefore the
/// order flows enter the advance set.
struct LinkLists {
    data: Vec<LinkEntry>,
    off: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
}

impl LinkLists {
    fn new(n_links: usize) -> Self {
        LinkLists {
            data: Vec::new(),
            off: vec![0; n_links],
            len: vec![0; n_links],
            cap: vec![0; n_links],
        }
    }

    fn list(&self, l: usize) -> &[LinkEntry] {
        let off = self.off[l] as usize;
        &self.data[off..off + self.len[l] as usize]
    }

    fn get(&self, l: usize, pos: usize) -> LinkEntry {
        debug_assert!((pos as u32) < self.len[l]);
        self.data[self.off[l] as usize + pos]
    }

    /// Append an entry to `l`'s list; returns its position.
    fn push(&mut self, l: usize, e: LinkEntry) -> u32 {
        if self.len[l] == self.cap[l] {
            let new_cap = (self.cap[l] * 2).max(4);
            let new_off = self.data.len() as u32;
            let old = self.off[l] as usize;
            self.data.reserve(new_cap as usize);
            for i in 0..self.len[l] as usize {
                let e = self.data[old + i];
                self.data.push(e);
            }
            self.data.resize(
                new_off as usize + new_cap as usize,
                LinkEntry { slot: 0, k: 0 },
            );
            self.off[l] = new_off;
            self.cap[l] = new_cap;
        }
        let pos = self.len[l];
        self.data[self.off[l] as usize + pos as usize] = e;
        self.len[l] += 1;
        pos
    }

    /// Remove the entry at `pos`, backfilling with the last entry.
    /// Returns the backfilled entry if one was moved into `pos`.
    fn swap_remove(&mut self, l: usize, pos: usize) -> Option<LinkEntry> {
        let off = self.off[l] as usize;
        let last = self.len[l] as usize - 1;
        debug_assert!(pos <= last);
        self.data[off + pos] = self.data[off + last];
        self.len[l] -= 1;
        (pos < last).then(|| self.data[off + pos])
    }
}

/// Per-slot interned path links and incidence positions, packed into one
/// arena (same rationale as [`LinkLists`]: region discovery and solve
/// staging walk a flow's links for every region flow, and per-slot heap
/// `Vec`s made each walk a cache miss into the large `FlowSlot`).
///
/// `links[off[s]..off[s]+len[s]]` are slot `s`'s interned link indices in
/// path-hop order; `pos` is the parallel position of each hop's entry in
/// `link_flows` (valid while the slot is linked). Segments are replaced
/// wholesale on (re)route; a segment that outgrows its capacity migrates
/// to the tail and the old one is abandoned, bounded as in `LinkLists`.
struct SlotHops {
    links: Vec<u32>,
    pos: Vec<u32>,
    off: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
}

impl SlotHops {
    fn new() -> Self {
        SlotHops {
            links: Vec::new(),
            pos: Vec::new(),
            off: Vec::new(),
            len: Vec::new(),
            cap: Vec::new(),
        }
    }

    /// Replace slot `s`'s hop list with `path_links`, resetting every
    /// incidence position to `NONE_U32`.
    fn set(&mut self, s: usize, path_links: &[LinkId]) {
        if self.off.len() <= s {
            self.off.resize(s + 1, 0);
            self.len.resize(s + 1, 0);
            self.cap.resize(s + 1, 0);
        }
        let n = path_links.len();
        if n as u32 > self.cap[s] {
            let new_cap = (n as u32).next_power_of_two().max(4);
            self.off[s] = self.links.len() as u32;
            self.links.resize(self.links.len() + new_cap as usize, 0);
            self.pos.resize(self.pos.len() + new_cap as usize, 0);
            self.cap[s] = new_cap;
        }
        let off = self.off[s] as usize;
        for (k, l) in path_links.iter().enumerate() {
            self.links[off + k] = l.0;
            self.pos[off + k] = NONE_U32;
        }
        self.len[s] = n as u32;
    }

    /// Slot `s`'s interned links, in path-hop order.
    fn links(&self, s: u32) -> &[u32] {
        let off = self.off[s as usize] as usize;
        &self.links[off..off + self.len[s as usize] as usize]
    }

    fn n(&self, s: u32) -> usize {
        self.len[s as usize] as usize
    }

    fn link(&self, s: u32, k: usize) -> u32 {
        debug_assert!(k < self.n(s));
        self.links[self.off[s as usize] as usize + k]
    }

    fn pos(&self, s: u32, k: usize) -> u32 {
        debug_assert!(k < self.n(s));
        self.pos[self.off[s as usize] as usize + k]
    }

    fn set_pos(&mut self, s: u32, k: usize, v: u32) {
        debug_assert!(k < self.n(s));
        self.pos[self.off[s as usize] as usize + k] = v;
    }
}

/// Monotone work counters of the incremental rate engine — evidence for
/// per-event complexity budgets (how much of the network each recompute
/// and advance actually touched).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Recomputes that had dirty links to solve.
    pub recomputes: u64,
    /// Links pulled into dirty regions, summed over all recomputes.
    pub region_links: u64,
    /// Flows pulled into dirty regions, summed over all recomputes.
    pub region_flows: u64,
    /// Flow integrations performed across all `advance_to` calls.
    pub advance_flow_steps: u64,
    /// Completion-heap entries pushed.
    pub heap_pushes: u64,
    /// Eager completion-heap compactions.
    pub heap_compactions: u64,
    /// CBR flow rate refreshes performed by the layered background pass.
    pub cbr_flow_updates: u64,
    /// Connected components solved, summed over all recomputes
    /// (relaxed-order mode; the exact path solves one joint region).
    pub components: u64,
}

/// The live network. See module docs for the driving contract.
pub struct FlowNet {
    topo: Topology,
    /// Flow id → slot; iterated for the id-ordered public views.
    index: BTreeMap<FlowId, u32>,
    slots: Vec<Option<FlowSlot>>,
    free_slots: Vec<u32>,
    next_id: u64,
    now: SimTime,
    /// Bumped on every rate recomputation; lets engines detect stale
    /// completion projections.
    epoch: u64,
    /// Committed rate per link as of the last recompute (bits/sec).
    link_load_bps: Vec<f64>,
    /// Cumulative bytes sourced per node since the start of the run —
    /// exactly what a NetFlow exporter on the host would report.
    cum_tx_bytes: Vec<f64>,
    rates_dirty: bool,

    // --- incremental rate engine ---
    /// Links whose allocation inputs changed since the last recompute.
    dirty_links: Vec<u32>,
    link_dirty: Vec<bool>,
    /// Per-link incidence lists of the *adaptive* flows consuming it.
    /// CBR (background) flows live in `link_cbr_flows`: region discovery
    /// walks only adaptive incidence, and the CBR layer only CBR
    /// incidence, so neither pays to skip the other's entries.
    link_flows: LinkLists,
    /// Per-link incidence lists of the CBR flows crossing it.
    link_cbr_flows: LinkLists,
    /// Per-slot interned path links and incidence positions.
    slot_hops: SlotHops,
    /// Aggregate requested CBR rate per link, maintained incrementally so
    /// background-traffic redraws never re-derive it from the flow set.
    cbr_requested_bps: Vec<f64>,
    ws: FairShareWorkspace,

    // --- layered CBR (background) solve ---
    /// Links whose CBR inputs (capacity or requested aggregate) changed.
    cbr_dirty_links: Vec<u32>,
    cbr_link_dirty: Vec<bool>,
    /// CBR share clamp per link (≤ 1.0), refreshed lazily.
    cbr_scale: Vec<f64>,
    /// Post-clamp committed CBR rate per link — the adaptive solve's
    /// pre-committed load.
    cbr_load_bps: Vec<f64>,
    /// Scratch: CBR slots touched by the current layer refresh.
    cbr_touched: Vec<u32>,
    cbr_touched_mark: Vec<bool>,
    /// Scratch: links whose committed CBR load must be re-summed.
    cbr_stale_loads: Vec<u32>,
    cbr_load_stale: Vec<bool>,
    /// Nodes whose sourced bytes are observable; `None` ⇒ all of them.
    metered_nodes: Option<Vec<bool>>,
    // Region-discovery scratch (cleared after each recompute).
    link_in_region: Vec<bool>,
    flow_in_region: Vec<bool>,
    link_local: Vec<u32>,
    region_links: Vec<u32>,
    region_slots: Vec<u32>,

    // --- completion tracking ---
    /// Lazy-deletion min-heap of projected completions:
    /// `(time, flow id, rate_epoch at projection)`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// Metered slots with a nonzero allocated rate — the only flows
    /// [`FlowNet::advance_to`] must integrate.
    active: Vec<u32>,
    /// Reusable output buffers of [`FlowNet::advance_to`].
    advance_completed_slots: Vec<u32>,
    advance_completed: Vec<FlowId>,
    stats: NetStats,

    // --- relaxed-order mode (lazy byte integration, component solves) ---
    /// Whether lazy, order-independent accounting is enabled.
    relaxed: bool,
    /// Worker threads for component solves (≥ 1; 1 ⇒ always sequential).
    solver_workers: usize,
    /// Per-worker solve workspaces, kept across recomputes.
    worker_ws: Vec<FairShareWorkspace>,
    /// Per-node lazy rate sum of metered flows sourced there (bits/sec).
    /// `cum_tx_bytes[n]` holds the *committed* bytes as of `node_since[n]`;
    /// the live counter is `committed + rate_sum · (now − since) / 8`.
    node_rate_bps: Vec<f64>,
    node_since: Vec<SimTime>,
    /// Component boundaries as exclusive prefix ends into
    /// (`region_links`, `region_slots`), one entry per component.
    comp_bounds: Vec<(u32, u32)>,
    /// Canonical write-back order: (flow id, region slot index).
    canon: Vec<(u64, u32)>,
    /// Solved rates / link loads, indexed like region_slots / region_links.
    rates_scratch: Vec<f64>,
    loads_scratch: Vec<f64>,
}

/// Shared read-only inputs of a relaxed-mode component solve.
struct SolveInputs<'a> {
    topo: &'a Topology,
    cbr_load_bps: &'a [f64],
    slot_hops: &'a SlotHops,
    link_local: &'a [u32],
}

/// Components smaller than this (in flows, summed over the whole region)
/// are never worth a thread spawn; solve sequentially.
const PAR_FLOWS_CUTOFF: usize = 256;

impl FlowNet {
    /// An empty network over `topo`, at time zero.
    pub fn new(topo: Topology) -> Self {
        let n_links = topo.num_links();
        let n_nodes = topo.num_nodes();
        FlowNet {
            topo,
            index: BTreeMap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_id: 0,
            now: SimTime::ZERO,
            epoch: 0,
            link_load_bps: vec![0.0; n_links],
            cum_tx_bytes: vec![0.0; n_nodes],
            rates_dirty: false,
            dirty_links: Vec::new(),
            link_dirty: vec![false; n_links],
            link_flows: LinkLists::new(n_links),
            link_cbr_flows: LinkLists::new(n_links),
            slot_hops: SlotHops::new(),
            cbr_requested_bps: vec![0.0; n_links],
            ws: FairShareWorkspace::new(),
            cbr_dirty_links: Vec::new(),
            cbr_link_dirty: vec![false; n_links],
            cbr_scale: vec![1.0; n_links],
            cbr_load_bps: vec![0.0; n_links],
            cbr_touched: Vec::new(),
            cbr_touched_mark: Vec::new(),
            cbr_stale_loads: Vec::new(),
            cbr_load_stale: vec![false; n_links],
            metered_nodes: None,
            link_in_region: vec![false; n_links],
            flow_in_region: Vec::new(),
            link_local: vec![NONE_U32; n_links],
            region_links: Vec::new(),
            region_slots: Vec::new(),
            heap: BinaryHeap::new(),
            active: Vec::new(),
            advance_completed_slots: Vec::new(),
            advance_completed: Vec::new(),
            stats: NetStats::default(),
            relaxed: false,
            solver_workers: 1,
            worker_ws: Vec::new(),
            node_rate_bps: vec![0.0; n_nodes],
            node_since: vec![SimTime::ZERO; n_nodes],
            comp_bounds: Vec::new(),
            canon: Vec::new(),
            rates_scratch: Vec::new(),
            loads_scratch: Vec::new(),
        }
    }

    /// Enable lazy, order-independent byte accounting (see module docs).
    /// Completion times and curve samples then match the exact path to a
    /// small relative tolerance rather than byte for byte.
    ///
    /// # Panics
    /// Panics if any flow was already started.
    pub fn set_relaxed_order(&mut self, on: bool) {
        assert!(
            self.index.is_empty(),
            "set_relaxed_order must be called before flows start"
        );
        self.relaxed = on;
    }

    /// Whether relaxed-order accounting is enabled.
    pub fn relaxed_order(&self) -> bool {
        self.relaxed
    }

    /// Worker threads for relaxed-mode component solves. Results are
    /// bitwise identical for any count (canonical write-back order);
    /// `1` keeps every solve on the calling thread.
    pub fn set_solver_workers(&mut self, n: usize) {
        self.solver_workers = n.max(1);
    }

    /// Restrict byte metering to flows sourced at `nodes` (bounded flows
    /// are always metered — completion detection needs their bytes).
    ///
    /// Unmetered flows still get fair-share rates and consume capacity,
    /// but [`FlowNet::advance_to`] skips them: their `transferred_bytes`
    /// stay zero and their source's [`FlowNet::cum_tx_bytes`] counter
    /// never moves. Call this when only some sources are observed (e.g.
    /// NetFlow probes on servers while unbounded background streams load
    /// switch-to-switch trunks) so the per-event integration cost is
    /// O(observable flows), not O(all flows).
    ///
    /// # Panics
    /// Panics if any flow was already started.
    pub fn meter_sources_only(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        assert!(
            self.index.is_empty(),
            "meter_sources_only must be called before flows start"
        );
        let mut metered = vec![false; self.topo.num_nodes()];
        for n in nodes {
            metered[n.0 as usize] = true;
        }
        self.metered_nodes = Some(metered);
    }

    /// Monotone work counters of the incremental engine.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// This network's topology view (capacities reflect degradations).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The instant byte counters are integrated up to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Rate-recompute epoch; changes whenever rates may have changed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of flows in the network (including completed-not-removed).
    pub fn num_active_flows(&self) -> usize {
        self.index.len()
    }

    fn slot(&self, slot: u32) -> &FlowSlot {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, slot: u32) -> &mut FlowSlot {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    /// Look up one flow.
    pub fn flow(&self, id: FlowId) -> Option<&ActiveFlow> {
        self.index.get(&id).map(|&s| &self.slot(s).flow)
    }

    /// All flows, in id order.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, &ActiveFlow)> {
        self.index.iter().map(|(&id, &s)| (id, &self.slot(s).flow))
    }

    // --- relaxed-order fold discipline ----------------------------------
    //
    // Every metered flow's bytes are a piecewise-linear function of time:
    // constant rate since the last fold. The same holds per source node
    // for the sum over its flows. The invariants:
    //
    //  * fold_node(src, t) must run before any change to the rate sum at
    //    `src` and before fold_slot of a flow sourced there;
    //  * a flow's rate only changes through relaxed_apply_rate (which
    //    folds first), so `rate · (t − since)` is always exact;
    //  * a bounded flow clamps at its remaining bytes; the node
    //    accumulator integrated the full rate over the interval, so the
    //    clamp excess is subtracted from the committed counter.

    /// Commit `node`'s lazy byte integral up to `t` (relaxed mode).
    fn fold_node(&mut self, node: usize, t: SimTime) {
        let dt = t.saturating_since(self.node_since[node]).as_secs_f64();
        if dt > 0.0 {
            self.cum_tx_bytes[node] += self.node_rate_bps[node] * dt / 8.0;
        }
        self.node_since[node] = t;
    }

    /// Commit a flow's lazy byte integral up to `t` (relaxed mode). The
    /// source node must already be folded to `t`.
    fn fold_slot(&mut self, slot: u32, t: SimTime) {
        let st = self.slots[slot as usize].as_mut().expect("live slot");
        let src = st.flow.spec.tuple.src.0 as usize;
        let dt = t.saturating_since(st.since).as_secs_f64();
        st.since = t;
        if !st.metered || st.flow.rate_bps <= 0.0 || dt <= 0.0 {
            return;
        }
        let raw = st.flow.rate_bps * dt / 8.0;
        let moved = match &mut st.flow.remaining_bytes {
            Some(rem) if *rem <= 0.0 => 0.0,
            Some(rem) => {
                let m = raw.min(*rem);
                *rem -= m;
                if *rem <= 0.0 {
                    *rem = 0.0;
                }
                m
            }
            None => raw,
        };
        st.flow.transferred_bytes += moved;
        let excess = raw - moved;
        if excess > 0.0 {
            // The node integral counted the full rate over the interval;
            // take the clamped part back out.
            self.cum_tx_bytes[src] -= excess;
        }
    }

    /// Relaxed-mode rate assignment: fold the flow (and its source's
    /// accumulator) to `now`, set the rate, maintain the node rate sum,
    /// bump the epoch, and (re)project completion. Link loads are *not*
    /// touched — each caller settles them (the solve write-back installs
    /// workspace loads wholesale; mutators adjust incrementally).
    fn relaxed_apply_rate(&mut self, slot: u32, rate: f64) {
        let now = self.now;
        let (src, metered, old) = {
            let st = self.slot(slot);
            (
                st.flow.spec.tuple.src.0 as usize,
                st.metered,
                st.flow.rate_bps,
            )
        };
        if metered {
            self.fold_node(src, now);
        }
        self.fold_slot(slot, now);
        if metered {
            self.node_rate_bps[src] = (self.node_rate_bps[src] - old + rate).max(0.0);
        }
        let st = self.slots[slot as usize].as_mut().expect("live slot");
        st.flow.rate_bps = rate;
        st.rate_epoch += 1;
        let entry = match st.flow.remaining_bytes {
            Some(rem) if rem > 0.0 && rate > 0.0 => {
                // Saturating: a provisional admission onto a degraded
                // (1 bps) link projects past the representable horizon.
                let d = SimDuration::for_bytes_at_rate(rem.ceil() as u64, rate);
                Some((now.saturating_add(d), st.id.0, st.rate_epoch))
            }
            Some(rem) if rem <= 0.0 => {
                // Drained at the fold (ceil projections run a hair long):
                // leave an immediate entry so the next advance reaps it.
                Some((now, st.id.0, st.rate_epoch))
            }
            _ => None,
        };
        if rate > 0.0 {
            self.activate(slot);
        } else {
            self.deactivate(slot);
        }
        if let Some(e) = entry {
            self.stats.heap_pushes += 1;
            self.heap.push(Reverse(e));
        }
    }

    /// Relaxed advance: no per-flow integration — pop every completion
    /// projection due by `t`, fold just those flows, and re-project the
    /// rare byte-ceil undershoot strictly later.
    fn advance_to_relaxed(&mut self, t: SimTime) -> &[FlowId] {
        let mut completed_slots = std::mem::take(&mut self.advance_completed_slots);
        completed_slots.clear();
        self.now = t;
        while let Some(&Reverse((pt, id, fe))) = self.heap.peek() {
            if pt > t {
                break;
            }
            self.heap.pop();
            let Some(&slot) = self.index.get(&FlowId(id)) else {
                continue;
            };
            let (valid, src, metered) = {
                let st = self.slot(slot);
                (
                    st.rate_epoch == fe,
                    st.flow.spec.tuple.src.0 as usize,
                    st.metered,
                )
            };
            if !valid {
                continue;
            }
            self.stats.advance_flow_steps += 1;
            if metered {
                self.fold_node(src, t);
            }
            self.fold_slot(slot, t);
            let st = self.slot(slot);
            match st.flow.remaining_bytes {
                Some(rem) if rem <= 0.0 => completed_slots.push(slot),
                Some(rem) if st.flow.rate_bps > 0.0 => {
                    // Undershoot: the ceil projection rounded long and an
                    // earlier advance folded past part of the interval.
                    let d = SimDuration::for_bytes_at_rate(rem.ceil() as u64, st.flow.rate_bps);
                    self.stats.heap_pushes += 1;
                    self.heap.push(Reverse((t.saturating_add(d), id, fe)));
                }
                _ => {}
            }
        }
        let mut completed = std::mem::take(&mut self.advance_completed);
        completed.clear();
        for &slot in &completed_slots {
            completed.push(self.slot(slot).id);
        }
        for &slot in &completed_slots {
            self.on_flow_completed(slot);
        }
        completed.sort_unstable();
        self.advance_completed_slots = completed_slots;
        self.advance_completed = completed;
        &self.advance_completed
    }

    /// Integrate byte counters up to `t`. Returns the bounded flows that
    /// reached zero remaining bytes during this advance (they stay in the
    /// network until [`FlowNet::remove_flow`]). The returned slice lives
    /// in a buffer reused across calls — copy it out before advancing
    /// again.
    ///
    /// # Panics
    /// Panics if `t` is in the past or if rates are stale (a flow was added
    /// or removed without a subsequent [`FlowNet::recompute`]).
    pub fn advance_to(&mut self, t: SimTime) -> &[FlowId] {
        assert!(t >= self.now, "advance_to({t}) before now ({})", self.now);
        if self.relaxed {
            return self.advance_to_relaxed(t);
        }
        assert!(
            !self.rates_dirty || self.index.is_empty(),
            "advance_to with stale rates: call recompute() after mutating flows"
        );
        let dt = (t - self.now).as_secs_f64();
        let mut completed_slots = std::mem::take(&mut self.advance_completed_slots);
        completed_slots.clear();
        if dt > 0.0 {
            self.stats.advance_flow_steps += self.active.len() as u64;
            for i in 0..self.active.len() {
                let slot = self.active[i];
                let st = self.slots[slot as usize].as_mut().expect("live slot");
                let f = &mut st.flow;
                let delta_bytes = f.rate_bps * dt / 8.0;
                let moved = match &mut f.remaining_bytes {
                    Some(rem) if *rem <= 0.0 => 0.0,
                    Some(rem) => {
                        let moved = delta_bytes.min(*rem);
                        *rem -= moved;
                        if *rem <= 0.0 {
                            *rem = 0.0;
                            completed_slots.push(slot);
                        }
                        moved
                    }
                    None => delta_bytes,
                };
                f.transferred_bytes += moved;
                self.cum_tx_bytes[f.spec.tuple.src.0 as usize] += moved;
            }
        }
        self.now = t;
        let mut completed = std::mem::take(&mut self.advance_completed);
        completed.clear();
        for &slot in &completed_slots {
            completed.push(self.slot(slot).id);
        }
        for &slot in &completed_slots {
            self.on_flow_completed(slot);
        }
        completed.sort_unstable();
        self.advance_completed_slots = completed_slots;
        self.advance_completed = completed;
        &self.advance_completed
    }

    /// The flows currently riding `link` (live, linked flows only; each
    /// appears once), in incidence-list order. A reverse index for
    /// fault handlers: collect, sort, and you have every flow a link
    /// event can possibly touch without scanning the whole flow table.
    pub fn flows_on_link(&self, link: LinkId) -> impl Iterator<Item = FlowId> + '_ {
        self.link_flows
            .list(link.0 as usize)
            .iter()
            .chain(self.link_cbr_flows.list(link.0 as usize))
            .map(move |e| self.slot(e.slot).id)
    }

    /// A flow just drained its byte budget: it stops consuming bandwidth
    /// immediately, frees its share for the next recompute, and leaves the
    /// hot advance/completion structures.
    fn on_flow_completed(&mut self, slot: u32) {
        if self.relaxed {
            // The flow is already folded (completion came from a fold);
            // retire its rate from the lazy node sum and the link loads.
            let (rate, src, metered) = {
                let st = self.slot(slot);
                (
                    st.flow.rate_bps,
                    st.flow.spec.tuple.src.0 as usize,
                    st.metered,
                )
            };
            if rate > 0.0 {
                if metered {
                    self.fold_node(src, self.now);
                    self.node_rate_bps[src] = (self.node_rate_bps[src] - rate).max(0.0);
                }
                for k in 0..self.slot_hops.n(slot) {
                    let l = self.slot_hops.link(slot, k) as usize;
                    self.link_load_bps[l] = (self.link_load_bps[l] - rate).max(0.0);
                }
            }
        }
        self.mark_flow_links_dirty(slot);
        self.unlink_flow(slot);
        self.deactivate(slot);
        let st = self.slot_mut(slot);
        st.flow.rate_bps = 0.0;
        st.rate_epoch += 1;
    }

    /// Inject a flow on `path`. The path must match the spec's endpoints.
    /// Rates become stale; call [`FlowNet::recompute`] before advancing.
    pub fn start_flow(&mut self, spec: FlowSpec, path: Path) -> FlowId {
        assert_eq!(path.src(), spec.tuple.src, "path/spec source mismatch");
        assert_eq!(path.dst(), spec.tuple.dst, "path/spec destination mismatch");
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let metered = spec.size_bytes.is_some()
            || self
                .metered_nodes
                .as_ref()
                .is_none_or(|m| m[spec.tuple.src.0 as usize]);
        let flow = ActiveFlow {
            remaining_bytes: spec.size_bytes.map(|b| b as f64),
            transferred_bytes: 0.0,
            rate_bps: 0.0,
            started_at: self.now,
            spec,
            path,
        };
        let complete = flow.is_complete();
        let slot = self.alloc_slot(FlowSlot {
            id,
            flow,
            linked: false,
            active_pos: NONE_U32,
            metered,
            rate_epoch: 0,
            since: self.now,
        });
        let st = self.slots[slot as usize].as_ref().expect("live slot");
        let adaptive = matches!(st.flow.spec.kind, FlowKind::Adaptive);
        self.slot_hops.set(slot as usize, st.flow.path.links());
        self.index.insert(id, slot);
        if !complete {
            self.link_flow(slot);
            self.mark_flow_links_dirty(slot);
            if self.relaxed && adaptive {
                // Provisional admission at the path's residual capacity:
                // keeps every link feasible and every flow progressing
                // between deferred solves; the next solve levels it to
                // the fair share. (CBR rates come from the CBR layer.)
                let mut r0 = f64::INFINITY;
                for k in 0..self.slot_hops.n(slot) {
                    let l = self.slot_hops.link(slot, k) as usize;
                    let cap = self.topo.link(LinkId(l as u32)).capacity_bps;
                    r0 = r0.min((cap - self.link_load_bps[l]).max(0.0));
                }
                if !r0.is_finite() {
                    r0 = 0.0;
                }
                if r0 > 0.0 {
                    for k in 0..self.slot_hops.n(slot) {
                        let l = self.slot_hops.link(slot, k) as usize;
                        self.link_load_bps[l] += r0;
                    }
                }
                self.relaxed_apply_rate(slot, r0);
            }
        }
        self.rates_dirty = true;
        id
    }

    /// Move a live flow onto a new path (SDN re-route). Bytes already
    /// transferred are kept; rates become stale.
    pub fn reroute_flow(&mut self, id: FlowId, path: Path) {
        let slot = *self.index.get(&id).expect("reroute of unknown flow");
        {
            let st = self.slot(slot);
            assert_eq!(
                path.src(),
                st.flow.spec.tuple.src,
                "path/spec source mismatch"
            );
            assert_eq!(
                path.dst(),
                st.flow.spec.tuple.dst,
                "path/spec destination mismatch"
            );
        }
        let rate = self.slot(slot).flow.rate_bps;
        if self.slot(slot).linked {
            self.mark_flow_links_dirty(slot);
            if self.relaxed && rate > 0.0 {
                // The flow keeps its rate across the move (the next solve
                // re-levels it); shift its committed load to the new path.
                for k in 0..self.slot_hops.n(slot) {
                    let l = self.slot_hops.link(slot, k) as usize;
                    self.link_load_bps[l] = (self.link_load_bps[l] - rate).max(0.0);
                }
            }
            self.unlink_flow(slot);
        }
        self.slot_hops.set(slot as usize, path.links());
        let complete = {
            let st = self.slot_mut(slot);
            st.flow.path = path;
            st.flow.is_complete()
        };
        if !complete {
            self.link_flow(slot);
            self.mark_flow_links_dirty(slot);
            if self.relaxed && rate > 0.0 {
                for k in 0..self.slot_hops.n(slot) {
                    let l = self.slot_hops.link(slot, k) as usize;
                    self.link_load_bps[l] += rate;
                }
            }
        }
        self.rates_dirty = true;
    }

    /// Degrade or restore a link in this network's topology view (cable
    /// fault model). Rates become stale.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity_bps: f64) {
        self.topo.set_link_capacity(link, capacity_bps);
        // Capacity feeds both layers: the CBR clamp and the adaptive solve.
        self.mark_link_cbr_dirty(link.0);
        self.mark_link_dirty(link.0);
        self.rates_dirty = true;
    }

    /// Change the requested rate of a CBR flow (time-varying background
    /// traffic). Rates become stale.
    ///
    /// # Panics
    /// Panics if the flow is not CBR.
    pub fn set_cbr_rate(&mut self, id: FlowId, rate_bps: f64) {
        assert!(rate_bps.is_finite() && rate_bps >= 0.0);
        let slot = *self.index.get(&id).expect("set_cbr_rate: unknown flow");
        let st = self.slot_mut(slot);
        let new = rate_bps.max(1.0);
        let old = match &mut st.flow.spec.kind {
            FlowKind::Cbr { rate_bps: r } => std::mem::replace(r, new),
            FlowKind::Adaptive => panic!("set_cbr_rate on adaptive flow"),
        };
        if st.linked {
            for k in 0..self.slot_hops.n(slot) {
                let l = self.slot_hops.link(slot, k);
                let agg = &mut self.cbr_requested_bps[l as usize];
                *agg = (*agg - old + new).max(0.0);
                self.mark_link_cbr_dirty(l);
            }
        }
        self.rates_dirty = true;
    }

    /// Remove a flow (completed or aborted) and return its accounting.
    pub fn remove_flow(&mut self, id: FlowId) -> FlowReport {
        let slot = self.index.remove(&id).expect("remove of unknown flow");
        if self.relaxed {
            // Settle lazy accounting so the report is exact as of now, and
            // retire an aborted flow's rate (completed flows are already
            // at rate zero and unlinked).
            let (rate, src, metered, linked) = {
                let st = self.slot(slot);
                (
                    st.flow.rate_bps,
                    st.flow.spec.tuple.src.0 as usize,
                    st.metered,
                    st.linked,
                )
            };
            if metered {
                self.fold_node(src, self.now);
            }
            self.fold_slot(slot, self.now);
            if rate > 0.0 {
                if metered {
                    self.node_rate_bps[src] = (self.node_rate_bps[src] - rate).max(0.0);
                }
                if linked {
                    for k in 0..self.slot_hops.n(slot) {
                        let l = self.slot_hops.link(slot, k) as usize;
                        self.link_load_bps[l] = (self.link_load_bps[l] - rate).max(0.0);
                    }
                }
            }
        }
        if self.slot(slot).linked {
            self.mark_flow_links_dirty(slot);
            self.unlink_flow(slot);
        }
        self.deactivate(slot);
        let st = self.slots[slot as usize].take().expect("live slot");
        self.free_slots.push(slot);
        self.rates_dirty = true;
        FlowReport {
            id,
            spec: st.flow.spec,
            path: st.flow.path,
            transferred_bytes: st.flow.transferred_bytes,
            started_at: st.flow.started_at,
            ended_at: self.now,
        }
    }

    /// Refresh the CBR (background) layer: per-link clamp scales, per-flow
    /// clamped rates, and the per-link committed CBR load the adaptive
    /// solve pre-commits. Runs only over links whose CBR inputs changed
    /// and the CBR flows crossing them; every refreshed link is handed to
    /// the adaptive layer as dirty (its residual may have moved).
    ///
    /// The arithmetic — `scale = min(1, limit·cap / requested)` per link,
    /// `rate = requested · min(scale over links)` per flow — is exactly
    /// the reference allocator's pass 1, so solving this layer separately
    /// reproduces the joint solve bit for bit when links don't share
    /// multi-link CBR flows (the background model uses one single-trunk
    /// flow per link), and to a few ULPs otherwise.
    fn recompute_cbr_layer(&mut self) {
        if self.cbr_dirty_links.is_empty() {
            return;
        }
        if self.cbr_touched_mark.len() < self.slots.len() {
            self.cbr_touched_mark.resize(self.slots.len(), false);
        }
        // Phase 1: refresh clamp scales on dirty links; collect the CBR
        // flows crossing them.
        let mut dirty = std::mem::take(&mut self.cbr_dirty_links);
        for &l in &dirty {
            let li = l as usize;
            self.cbr_link_dirty[li] = false;
            let cap = CBR_SHARE_LIMIT * self.topo.link(LinkId(l)).capacity_bps;
            let req = self.cbr_requested_bps[li];
            self.cbr_scale[li] = if req > cap { cap / req } else { 1.0 };
            self.mark_link_dirty(l);
            if !self.cbr_load_stale[li] {
                self.cbr_load_stale[li] = true;
                self.cbr_stale_loads.push(l);
            }
            for ei in 0..self.link_cbr_flows.len[li] as usize {
                let e = self.link_cbr_flows.get(li, ei);
                if !self.cbr_touched_mark[e.slot as usize] {
                    self.cbr_touched_mark[e.slot as usize] = true;
                    self.cbr_touched.push(e.slot);
                }
            }
        }
        dirty.clear();
        self.cbr_dirty_links = dirty;

        // Phase 2: re-clamp every touched flow (all scales are fresh by
        // now) and propagate: its links feed the adaptive layer and need
        // their committed CBR load re-summed.
        let touched = std::mem::take(&mut self.cbr_touched);
        let now = self.now;
        for &slot in &touched {
            self.cbr_touched_mark[slot as usize] = false;
            let st = self.slots[slot as usize].as_mut().expect("live slot");
            let r = match st.flow.spec.kind {
                FlowKind::Cbr { rate_bps } => rate_bps,
                FlowKind::Adaptive => unreachable!("adaptive flow in CBR layer"),
            };
            let mut k = 1.0f64;
            for &l in self.slot_hops.links(slot) {
                k = k.min(self.cbr_scale[l as usize]);
                if !self.link_dirty[l as usize] {
                    self.link_dirty[l as usize] = true;
                    self.dirty_links.push(l);
                }
                if !self.cbr_load_stale[l as usize] {
                    self.cbr_load_stale[l as usize] = true;
                    self.cbr_stale_loads.push(l);
                }
            }
            let rate = r * k;
            self.stats.cbr_flow_updates += 1;
            if self.relaxed {
                // Same write-back semantics, via the lazy-accounting rate
                // assignment (fold, node rate sum, epoch, projection).
                if rate != self.slot(slot).flow.rate_bps {
                    self.relaxed_apply_rate(slot, rate);
                }
                continue;
            }
            let st = self.slots[slot as usize].as_mut().expect("live slot");
            let entry = if rate == st.flow.rate_bps {
                None
            } else {
                st.flow.rate_bps = rate;
                st.rate_epoch += 1;
                match st.flow.remaining_bytes {
                    Some(rem) if rem > 0.0 && rate > 0.0 => {
                        let d = SimDuration::for_bytes_at_rate(rem.ceil() as u64, rate);
                        Some(Some((now + d, st.id.0, st.rate_epoch)))
                    }
                    _ => Some(None),
                }
            };
            if let Some(entry) = entry {
                if rate > 0.0 {
                    self.activate(slot);
                } else {
                    self.deactivate(slot);
                }
                if let Some(e) = entry {
                    self.stats.heap_pushes += 1;
                    self.heap.push(Reverse(e));
                }
            }
        }
        let mut touched = touched;
        touched.clear();
        self.cbr_touched = touched;

        // Phase 3: re-sum committed CBR load on every stale link, walking
        // its incidence list in order (deterministic summation).
        let stale = std::mem::take(&mut self.cbr_stale_loads);
        for &l in &stale {
            self.cbr_load_stale[l as usize] = false;
            let mut sum = 0.0;
            for e in self.link_cbr_flows.list(l as usize) {
                sum += self.slots[e.slot as usize]
                    .as_ref()
                    .expect("live slot")
                    .flow
                    .rate_bps;
            }
            self.cbr_load_bps[l as usize] = sum;
        }
        let mut stale = stale;
        stale.clear();
        self.cbr_stale_loads = stale;
    }

    /// Recompute max-min fair rates for every flow sharing a component of
    /// the flow–link graph with a dirtied link. With no dirty links this
    /// is O(1) (rates cannot have changed).
    pub fn recompute(&mut self) {
        if self.relaxed {
            return self.recompute_relaxed();
        }
        self.epoch += 1;
        self.rates_dirty = false;
        self.recompute_cbr_layer();
        if self.dirty_links.is_empty() {
            return;
        }
        // --- Region discovery: BFS over the bipartite flow–link sharing
        // graph, seeded at the dirty links. Any flow crossing a region
        // link pulls all of its links into the region, so the region is a
        // union of whole components and can be solved independently.
        self.region_links.clear();
        self.region_slots.clear();
        for l in self.dirty_links.drain(..) {
            self.link_dirty[l as usize] = false;
            if !self.link_in_region[l as usize] {
                self.link_in_region[l as usize] = true;
                self.region_links.push(l);
            }
        }
        let mut qi = 0;
        while qi < self.region_links.len() {
            let l = self.region_links[qi] as usize;
            qi += 1;
            for ei in 0..self.link_flows.len[l] as usize {
                // Only adaptive incidence lives here; CBR flows are solved
                // by the layered background pass and the adaptive region
                // sees them only as pre-committed link load.
                let slot = self.link_flows.get(l, ei).slot;
                if self.flow_in_region[slot as usize] {
                    continue;
                }
                self.flow_in_region[slot as usize] = true;
                self.region_slots.push(slot);
                for &l2 in self.slot_hops.links(slot) {
                    if !self.link_in_region[l2 as usize] {
                        self.link_in_region[l2 as usize] = true;
                        self.region_links.push(l2);
                    }
                }
            }
        }

        self.stats.recomputes += 1;
        self.stats.region_links += self.region_links.len() as u64;
        self.stats.region_flows += self.region_slots.len() as u64;

        // --- Solve the region in local index space. Only adaptive flows
        // are staged; the CBR layer's committed load is pre-committed on
        // each link, exactly as the joint solve's pass 1 would have left
        // it.
        self.ws.begin(self.region_links.len());
        for (li, &l) in self.region_links.iter().enumerate() {
            self.link_local[l as usize] = li as u32;
            self.ws
                .set_link(li, self.topo.link(LinkId(l)).capacity_bps, 0.0);
            self.ws.preload_link(li, self.cbr_load_bps[l as usize]);
        }
        for &slot in &self.region_slots {
            debug_assert!(matches!(self.slot(slot).flow.spec.kind, FlowKind::Adaptive));
            let hops = self.slot_hops.links(slot);
            self.ws
                .add_flow(hops.iter().map(|&l| self.link_local[l as usize]), None);
        }
        self.ws.solve();

        // --- Write back rates, link loads, and completion projections.
        let now = self.now;
        for fi in 0..self.region_slots.len() {
            let slot = self.region_slots[fi];
            let rate = self.ws.rate_bps(fi);
            let entry = {
                let st = self.slots[slot as usize].as_mut().expect("live slot");
                debug_assert!(st.linked && !st.flow.is_complete());
                if rate == st.flow.rate_bps {
                    // Unchanged: existing heap entries and active-set
                    // membership remain valid.
                    None
                } else {
                    st.flow.rate_bps = rate;
                    st.rate_epoch += 1;
                    match st.flow.remaining_bytes {
                        Some(rem) if rem > 0.0 && rate > 0.0 => {
                            let d = SimDuration::for_bytes_at_rate(rem.ceil() as u64, rate);
                            Some(Some((now + d, st.id.0, st.rate_epoch)))
                        }
                        _ => Some(None),
                    }
                }
            };
            if let Some(entry) = entry {
                if rate > 0.0 {
                    self.activate(slot);
                } else {
                    self.deactivate(slot);
                }
                if let Some(e) = entry {
                    self.stats.heap_pushes += 1;
                    self.heap.push(Reverse(e));
                }
            }
        }
        for (li, &l) in self.region_links.iter().enumerate() {
            self.link_load_bps[l as usize] = self.ws.link_load_bps(li);
        }

        // --- Reset region marks for the next recompute.
        for &l in &self.region_links {
            self.link_in_region[l as usize] = false;
        }
        for &slot in &self.region_slots {
            self.flow_in_region[slot as usize] = false;
        }

        #[cfg(debug_assertions)]
        self.assert_matches_reference();
    }

    /// Relaxed-mode recompute: split the dirty set into its connected
    /// components, solve each independently (on scoped worker threads when
    /// the region is big enough), and write rates back in canonical
    /// flow-id order so the result is bitwise identical for any worker
    /// count and any discovery order.
    fn recompute_relaxed(&mut self) {
        self.epoch += 1;
        self.rates_dirty = false;
        self.recompute_cbr_layer();
        if self.dirty_links.is_empty() {
            return;
        }
        // --- Component discovery: one BFS per still-unvisited dirty seed.
        // Each BFS exhausts exactly one connected component of the
        // flow–link sharing graph, laid out contiguously in the region
        // buffers with its exclusive end recorded in `comp_bounds`.
        self.region_links.clear();
        self.region_slots.clear();
        self.comp_bounds.clear();
        let dirty = std::mem::take(&mut self.dirty_links);
        for &l in &dirty {
            self.link_dirty[l as usize] = false;
        }
        for &seed in &dirty {
            if self.link_in_region[seed as usize] {
                continue;
            }
            let mut qi = self.region_links.len();
            self.link_in_region[seed as usize] = true;
            self.region_links.push(seed);
            while qi < self.region_links.len() {
                let l = self.region_links[qi] as usize;
                qi += 1;
                for ei in 0..self.link_flows.len[l] as usize {
                    let slot = self.link_flows.get(l, ei).slot;
                    if self.flow_in_region[slot as usize] {
                        continue;
                    }
                    self.flow_in_region[slot as usize] = true;
                    self.region_slots.push(slot);
                    for &l2 in self.slot_hops.links(slot) {
                        if !self.link_in_region[l2 as usize] {
                            self.link_in_region[l2 as usize] = true;
                            self.region_links.push(l2);
                        }
                    }
                }
            }
            self.comp_bounds.push((
                self.region_links.len() as u32,
                self.region_slots.len() as u32,
            ));
        }
        let mut dirty = dirty;
        dirty.clear();
        self.dirty_links = dirty;

        self.stats.recomputes += 1;
        self.stats.region_links += self.region_links.len() as u64;
        self.stats.region_flows += self.region_slots.len() as u64;
        self.stats.components += self.comp_bounds.len() as u64;

        // Local link indices are component-relative: each component is
        // staged into its own workspace.
        {
            let mut base = 0usize;
            let mut ci = 0usize;
            for (li, &l) in self.region_links.iter().enumerate() {
                while li as u32 >= self.comp_bounds[ci].0 {
                    base = self.comp_bounds[ci].0 as usize;
                    ci += 1;
                }
                self.link_local[l as usize] = (li - base) as u32;
            }
        }
        self.rates_scratch.clear();
        self.rates_scratch.resize(self.region_slots.len(), 0.0);
        self.loads_scratch.clear();
        self.loads_scratch.resize(self.region_links.len(), 0.0);

        let n_workers = self.solver_workers.min(self.comp_bounds.len());
        if n_workers > 1 && self.region_slots.len() >= PAR_FLOWS_CUTOFF {
            self.solve_components_parallel(n_workers);
        } else {
            let inputs = SolveInputs {
                topo: &self.topo,
                cbr_load_bps: &self.cbr_load_bps,
                slot_hops: &self.slot_hops,
                link_local: &self.link_local,
            };
            let (mut pl, mut ps) = (0usize, 0usize);
            for &(le, se) in &self.comp_bounds {
                let (le, se) = (le as usize, se as usize);
                Self::solve_component(
                    &mut self.ws,
                    &inputs,
                    &self.region_links[pl..le],
                    &self.region_slots[ps..se],
                    &mut self.rates_scratch[ps..se],
                    &mut self.loads_scratch[pl..le],
                );
                pl = le;
                ps = se;
            }
        }

        // --- Canonical write-back: flow-id order, independent of both
        // component discovery order and worker layout (the node rate sums
        // are floating-point accumulations, so the fold order must be
        // pinned for run-to-run determinism).
        self.canon.clear();
        for (fi, &slot) in self.region_slots.iter().enumerate() {
            self.canon.push((self.slot(slot).id.0, fi as u32));
        }
        self.canon.sort_unstable();
        let canon = std::mem::take(&mut self.canon);
        for &(_, fi) in &canon {
            let slot = self.region_slots[fi as usize];
            let rate = self.rates_scratch[fi as usize];
            if rate != self.slot(slot).flow.rate_bps {
                self.relaxed_apply_rate(slot, rate);
            }
        }
        self.canon = canon;
        for (li, &l) in self.region_links.iter().enumerate() {
            self.link_load_bps[l as usize] = self.loads_scratch[li];
        }

        // --- Reset region marks for the next recompute.
        for &l in &self.region_links {
            self.link_in_region[l as usize] = false;
        }
        for &slot in &self.region_slots {
            self.flow_in_region[slot as usize] = false;
        }

        #[cfg(debug_assertions)]
        self.assert_matches_reference();
    }

    /// Solve the discovered components on scoped worker threads: a greedy
    /// contiguous partition balanced by flow count, one workspace per
    /// worker, disjoint slices of the result buffers.
    fn solve_components_parallel(&mut self, n_workers: usize) {
        if self.worker_ws.len() < n_workers {
            self.worker_ws
                .resize_with(n_workers, FairShareWorkspace::new);
        }
        let total = self.region_slots.len();
        let target = total.div_ceil(n_workers).max(1);
        let mut parts: Vec<(usize, usize)> = Vec::with_capacity(n_workers);
        {
            let mut c0 = 0usize;
            let mut flows_base = 0u32;
            for (ci, &(_, se)) in self.comp_bounds.iter().enumerate() {
                if (se - flows_base) as usize >= target || ci + 1 == self.comp_bounds.len() {
                    parts.push((c0, ci + 1));
                    c0 = ci + 1;
                    flows_base = se;
                }
            }
        }
        let inputs = SolveInputs {
            topo: &self.topo,
            cbr_load_bps: &self.cbr_load_bps,
            slot_hops: &self.slot_hops,
            link_local: &self.link_local,
        };
        let comp_bounds: &[(u32, u32)] = &self.comp_bounds;
        let region_links: &[u32] = &self.region_links;
        let region_slots: &[u32] = &self.region_slots;
        let mut rates_rest: &mut [f64] = &mut self.rates_scratch;
        let mut loads_rest: &mut [f64] = &mut self.loads_scratch;
        std::thread::scope(|scope| {
            let inputs = &inputs;
            let mut links_off = 0usize;
            let mut slots_off = 0usize;
            for (ws, &(c0, c1)) in self.worker_ws.iter_mut().zip(&parts) {
                let l_end = comp_bounds[c1 - 1].0 as usize;
                let s_end = comp_bounds[c1 - 1].1 as usize;
                let links_w = &region_links[links_off..l_end];
                let slots_w = &region_slots[slots_off..s_end];
                let (rates_w, rr) = std::mem::take(&mut rates_rest).split_at_mut(s_end - slots_off);
                rates_rest = rr;
                let (loads_w, lr) = std::mem::take(&mut loads_rest).split_at_mut(l_end - links_off);
                loads_rest = lr;
                let bounds_w = &comp_bounds[c0..c1];
                let (mut pl, mut ps) = (links_off as u32, slots_off as u32);
                links_off = l_end;
                slots_off = s_end;
                scope.spawn(move || {
                    let (mut ol, mut os) = (0usize, 0usize);
                    for &(le, se) in bounds_w {
                        let nl = (le - pl) as usize;
                        let ns = (se - ps) as usize;
                        Self::solve_component(
                            ws,
                            inputs,
                            &links_w[ol..ol + nl],
                            &slots_w[os..os + ns],
                            &mut rates_w[os..os + ns],
                            &mut loads_w[ol..ol + nl],
                        );
                        ol += nl;
                        os += ns;
                        pl = le;
                        ps = se;
                    }
                });
            }
        });
    }

    /// Stage and solve one connected component in `ws`; rates and link
    /// loads land in the component's slices of the scratch buffers.
    fn solve_component(
        ws: &mut FairShareWorkspace,
        inp: &SolveInputs<'_>,
        links: &[u32],
        slots: &[u32],
        rates_out: &mut [f64],
        loads_out: &mut [f64],
    ) {
        ws.begin(links.len());
        for (li, &l) in links.iter().enumerate() {
            ws.set_link(li, inp.topo.link(LinkId(l)).capacity_bps, 0.0);
            ws.preload_link(li, inp.cbr_load_bps[l as usize]);
        }
        for &slot in slots {
            ws.add_flow(
                inp.slot_hops
                    .links(slot)
                    .iter()
                    .map(|&l| inp.link_local[l as usize]),
                None,
            );
        }
        ws.solve();
        for (fi, r) in rates_out.iter_mut().enumerate() {
            *r = ws.rate_bps(fi);
        }
        for (li, ld) in loads_out.iter_mut().enumerate() {
            *ld = ws.link_load_bps(li);
        }
    }

    /// Recompute rates for the whole network regardless of what is dirty.
    pub fn full_recompute(&mut self) {
        for l in 0..self.topo.num_links() as u32 {
            self.mark_link_cbr_dirty(l);
            self.mark_link_dirty(l);
        }
        self.recompute();
    }

    /// Earliest projected completion among bounded, progressing flows.
    ///
    /// Pops dead heap entries (rate changed, flow completed or removed)
    /// lazily; takes `&mut self` for exactly that reason.
    ///
    /// # Panics
    /// Panics if rates are stale (exact mode; relaxed projections are
    /// always valid under the current — possibly provisional — rates).
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        if self.relaxed {
            return self.next_completion_relaxed();
        }
        assert!(!self.rates_dirty, "next_completion with stale rates");
        if self.heap.len() > 64 && self.heap.len() > 4 * self.index.len() {
            self.compact_heap();
        }
        while let Some(&Reverse((t, id, fe))) = self.heap.peek() {
            let fid = FlowId(id);
            let proj = self.index.get(&fid).and_then(|&slot| {
                let st = self.slots[slot as usize].as_ref().expect("live slot");
                match st.flow.remaining_bytes {
                    Some(rem) if rem > 0.0 && st.flow.rate_bps > 0.0 && st.rate_epoch == fe => {
                        Some((rem, st.flow.rate_bps))
                    }
                    _ => None,
                }
            });
            let Some((rem, rate)) = proj else {
                self.heap.pop();
                continue;
            };
            if t <= self.now {
                // The projection is not in the future, yet the flow still
                // has bytes left — byte-ceil rounding drifted across an
                // advance at an unchanged rate. Re-project from the current
                // state; the new time is strictly later than `now` (a
                // nonzero byte count never rounds to a zero duration), so
                // drivers that advance to the returned time always make
                // progress.
                self.heap.pop();
                let d = SimDuration::for_bytes_at_rate(rem.ceil() as u64, rate);
                self.heap.push(Reverse((self.now + d, id, fe)));
                continue;
            }
            return Some((t, fid));
        }
        None
    }

    /// Relaxed variant: a flow drained by an out-of-advance fold keeps an
    /// immediate entry (returned clamped to `now` so the driver reaps it
    /// on its next advance), and stale byte-ceil projections fold the flow
    /// before re-projecting.
    fn next_completion_relaxed(&mut self) -> Option<(SimTime, FlowId)> {
        if self.heap.len() > 64 && self.heap.len() > 4 * self.index.len() {
            self.compact_heap();
        }
        while let Some(&Reverse((t, id, fe))) = self.heap.peek() {
            let fid = FlowId(id);
            let Some(&slot) = self.index.get(&fid) else {
                self.heap.pop();
                continue;
            };
            let (epoch_ok, rem, rate, src, metered) = {
                let st = self.slot(slot);
                (
                    st.rate_epoch == fe,
                    st.flow.remaining_bytes,
                    st.flow.rate_bps,
                    st.flow.spec.tuple.src.0 as usize,
                    st.metered,
                )
            };
            let Some(rem) = rem.filter(|_| epoch_ok) else {
                self.heap.pop();
                continue;
            };
            if rem <= 0.0 {
                return Some((t.max(self.now), fid));
            }
            if rate <= 0.0 {
                self.heap.pop();
                continue;
            }
            if t <= self.now {
                self.heap.pop();
                if metered {
                    self.fold_node(src, self.now);
                }
                self.fold_slot(slot, self.now);
                let rem = self
                    .slot(slot)
                    .flow
                    .remaining_bytes
                    .expect("bounded flow stays bounded");
                self.stats.heap_pushes += 1;
                if rem <= 0.0 {
                    self.heap.push(Reverse((self.now, id, fe)));
                    return Some((self.now, fid));
                }
                let d = SimDuration::for_bytes_at_rate(rem.ceil() as u64, rate);
                self.heap
                    .push(Reverse((self.now.saturating_add(d), id, fe)));
                continue;
            }
            return Some((t, fid));
        }
        None
    }

    /// Drop dead heap entries eagerly; keeps the heap O(live flows).
    fn compact_heap(&mut self) {
        self.stats.heap_compactions += 1;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|&Reverse((_, id, fe))| {
            self.index
                .get(&FlowId(id))
                .map(|&slot| {
                    self.slots[slot as usize]
                        .as_ref()
                        .expect("live slot")
                        .rate_epoch
                        == fe
                })
                .unwrap_or(false)
        });
        self.heap = BinaryHeap::from(entries);
    }

    /// Committed rate on `link` (bits/sec) as of the last recompute.
    pub fn link_load_bps(&self, link: LinkId) -> f64 {
        self.link_load_bps[link.0 as usize]
    }

    /// Load / capacity for `link`, in `[0, 1]`. A link degraded to zero
    /// capacity reports utilization 1.0 — it can carry nothing, and path
    /// scoring must treat it as saturated rather than divide by zero.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let cap = self.topo.link(link).capacity_bps;
        if cap <= 0.0 {
            return 1.0;
        }
        self.link_load_bps(link) / cap
    }

    /// Cumulative bytes sourced by `node` since the start of the run.
    /// In relaxed mode the counter is evaluated analytically from the
    /// node's committed bytes plus its lazy rate-sum segment — reading it
    /// never forces a fold.
    pub fn cum_tx_bytes(&self, node: NodeId) -> f64 {
        let i = node.0 as usize;
        let Some(&committed) = self.cum_tx_bytes.get(i) else {
            return 0.0;
        };
        if !self.relaxed {
            return committed;
        }
        let dt = self.now.saturating_since(self.node_since[i]).as_secs_f64();
        committed + self.node_rate_bps[i] * dt / 8.0
    }

    // --- incidence-list and hot-set maintenance -------------------------

    fn alloc_slot(&mut self, st: FlowSlot) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            self.slots[s as usize] = Some(st);
            s
        } else {
            self.slots.push(Some(st));
            self.flow_in_region.push(false);
            (self.slots.len() - 1) as u32
        }
    }

    fn mark_link_dirty(&mut self, l: u32) {
        if !self.link_dirty[l as usize] {
            self.link_dirty[l as usize] = true;
            self.dirty_links.push(l);
        }
    }

    fn mark_link_cbr_dirty(&mut self, l: u32) {
        if !self.cbr_link_dirty[l as usize] {
            self.cbr_link_dirty[l as usize] = true;
            self.cbr_dirty_links.push(l);
        }
    }

    /// Mark every link of the flow dirty in the layer that owns it: CBR
    /// mutations go through the background layer (which re-dirties the
    /// links for the adaptive layer after refreshing clamps and loads),
    /// adaptive mutations straight to the region solver.
    fn mark_flow_links_dirty(&mut self, slot: u32) {
        let cbr = matches!(self.slot(slot).flow.spec.kind, FlowKind::Cbr { .. });
        for k in 0..self.slot_hops.n(slot) {
            let l = self.slot_hops.link(slot, k);
            if cbr {
                self.mark_link_cbr_dirty(l);
            } else {
                self.mark_link_dirty(l);
            }
        }
    }

    /// Add the flow to the incidence lists and CBR aggregates.
    fn link_flow(&mut self, slot: u32) {
        let st = self.slot_mut(slot);
        debug_assert!(!st.linked);
        st.linked = true;
        let cbr = match st.flow.spec.kind {
            FlowKind::Cbr { rate_bps } => rate_bps,
            FlowKind::Adaptive => -1.0,
        };
        for k in 0..self.slot_hops.n(slot) {
            let l = self.slot_hops.link(slot, k);
            let e = LinkEntry { slot, k: k as u32 };
            let pos = if cbr >= 0.0 {
                self.cbr_requested_bps[l as usize] += cbr;
                self.link_cbr_flows.push(l as usize, e)
            } else {
                self.link_flows.push(l as usize, e)
            };
            self.slot_hops.set_pos(slot, k, pos);
        }
    }

    /// Remove the flow from the incidence lists and CBR aggregates.
    fn unlink_flow(&mut self, slot: u32) {
        let st = self.slot_mut(slot);
        debug_assert!(st.linked);
        st.linked = false;
        let cbr = match st.flow.spec.kind {
            FlowKind::Cbr { rate_bps } => rate_bps,
            FlowKind::Adaptive => -1.0,
        };
        for k in 0..self.slot_hops.n(slot) {
            let l = self.slot_hops.link(slot, k);
            let pos = self.slot_hops.pos(slot, k) as usize;
            let lists = if cbr >= 0.0 {
                let agg = &mut self.cbr_requested_bps[l as usize];
                *agg = (*agg - cbr).max(0.0);
                &mut self.link_cbr_flows
            } else {
                &mut self.link_flows
            };
            if let Some(moved) = lists.swap_remove(l as usize, pos) {
                self.slot_hops
                    .set_pos(moved.slot, moved.k as usize, pos as u32);
            }
        }
    }

    fn activate(&mut self, slot: u32) {
        let st = self.slot(slot);
        if !st.metered {
            // Nothing observes this flow's bytes: keep it out of the
            // advance hot set entirely.
            return;
        }
        if st.active_pos == NONE_U32 {
            self.slot_mut(slot).active_pos = self.active.len() as u32;
            self.active.push(slot);
        }
    }

    fn deactivate(&mut self, slot: u32) {
        let pos = self.slot(slot).active_pos;
        if pos == NONE_U32 {
            return;
        }
        self.slot_mut(slot).active_pos = NONE_U32;
        self.active.swap_remove(pos as usize);
        if (pos as usize) < self.active.len() {
            let moved = self.active[pos as usize];
            self.slot_mut(moved).active_pos = pos;
        }
    }

    // --- checkpoint / restore -------------------------------------------

    /// Serialize the complete network state into an open snapshot section.
    ///
    /// Everything observable is written verbatim — float tables are
    /// incrementally maintained accumulations, so re-deriving them would
    /// change bits — and everything order-sensitive keeps its exact order:
    /// per-link incidence lists (region discovery order), the `active`
    /// hot set (exact-mode integration order), the free-slot stack
    /// (future slot assignment), and the completion heap as a full
    /// multiset *including dead entries* (its length gates compaction).
    ///
    /// # Panics
    /// Panics if rates are stale — checkpoint only a solved network.
    pub fn put_state(&self, w: &mut SectionWriter) {
        assert!(
            !self.rates_dirty && self.dirty_links.is_empty() && self.cbr_dirty_links.is_empty(),
            "put_state requires a solved network: call recompute() first"
        );
        self.now.put(w);
        self.epoch.put(w);
        self.next_id.put(w);
        self.relaxed.put(w);
        let n_links = self.topo.num_links();
        (n_links as u64).put(w);
        for l in 0..n_links {
            self.topo.link(LinkId(l as u32)).capacity_bps.put(w);
        }
        (self.slots.len() as u64).put(w);
        for st in &self.slots {
            match st {
                None => false.put(w),
                Some(st) => {
                    true.put(w);
                    st.id.put(w);
                    st.flow.spec.put(w);
                    crate::persist::put_path(w, &st.flow.path);
                    st.flow.remaining_bytes.put(w);
                    st.flow.transferred_bytes.put(w);
                    st.flow.rate_bps.put(w);
                    st.flow.started_at.put(w);
                    st.linked.put(w);
                    st.metered.put(w);
                    st.rate_epoch.put(w);
                    st.since.put(w);
                }
            }
        }
        self.free_slots.put(w);
        self.link_load_bps.put(w);
        self.cum_tx_bytes.put(w);
        self.cbr_requested_bps.put(w);
        self.cbr_scale.put(w);
        self.cbr_load_bps.put(w);
        self.metered_nodes.put(w);
        self.node_rate_bps.put(w);
        self.node_since.put(w);
        for l in 0..n_links {
            for lists in [&self.link_flows, &self.link_cbr_flows] {
                let list = lists.list(l);
                (list.len() as u64).put(w);
                for e in list {
                    e.slot.put(w);
                    e.k.put(w);
                }
            }
        }
        let mut heap: Vec<(SimTime, u64, u64)> = self.heap.iter().map(|&Reverse(e)| e).collect();
        heap.sort_unstable();
        heap.put(w);
        self.active.put(w);
        self.stats.put(w);
    }

    /// Rebuild a network from a section written by [`FlowNet::put_state`].
    ///
    /// `topo` is the *pristine* topology (as built from configuration);
    /// degraded capacities are restored from the snapshot on top of it.
    /// Every cross-reference in the snapshot is validated — a corrupt
    /// section yields a typed error, never a panic — and the arenas
    /// ([`LinkLists`], [`SlotHops`]) are rebuilt from the serialized
    /// logical list orders, so a re-snapshot of the result is
    /// byte-identical to the input.
    pub fn get_state(topo: Topology, r: &mut SectionReader) -> Result<FlowNet, SnapshotError> {
        let mut net = FlowNet::new(topo);
        net.now = SimTime::get(r)?;
        net.epoch = u64::get(r)?;
        net.next_id = u64::get(r)?;
        net.relaxed = bool::get(r)?;
        let n_links = net.topo.num_links();
        let n_nodes = net.topo.num_nodes();
        if u64::get(r)? as usize != n_links {
            return Err(r.malformed("link count does not match topology"));
        }
        for l in 0..n_links {
            let cap = f64::get(r)?;
            if !cap.is_finite() || cap < 0.0 {
                return Err(r.malformed(format!("link {l} capacity {cap} invalid")));
            }
            net.topo.set_link_capacity(LinkId(l as u32), cap);
        }
        let n_slots = u64::get(r)? as usize;
        if n_slots > r.remaining() {
            return Err(r.malformed("slot count exceeds section size"));
        }
        net.slots = Vec::with_capacity(n_slots);
        for s in 0..n_slots {
            if !bool::get(r)? {
                net.slots.push(None);
                continue;
            }
            let id = FlowId::get(r)?;
            let spec = FlowSpec::get(r)?;
            let n_hops = u64::get(r)? as usize;
            if n_hops > r.remaining() / 4 {
                return Err(r.malformed("path length exceeds section size"));
            }
            let mut links = Vec::with_capacity(n_hops);
            for _ in 0..n_hops {
                let l = u32::get(r)?;
                if l as usize >= n_links {
                    return Err(r.malformed(format!("path link {l} out of range")));
                }
                links.push(LinkId(l));
            }
            let path = Path::new(&net.topo, links)
                .map_err(|e| r.malformed(format!("flow {id} path invalid: {e:?}")))?;
            if path.src() != spec.tuple.src || path.dst() != spec.tuple.dst {
                return Err(r.malformed(format!("flow {id} path/spec endpoint mismatch")));
            }
            let flow = ActiveFlow {
                spec,
                path,
                remaining_bytes: Option::<f64>::get(r)?,
                transferred_bytes: f64::get(r)?,
                rate_bps: f64::get(r)?,
                started_at: SimTime::get(r)?,
            };
            if !flow.rate_bps.is_finite() || flow.rate_bps < 0.0 {
                return Err(r.malformed(format!("flow {id} rate {} invalid", flow.rate_bps)));
            }
            if id.0 >= net.next_id {
                return Err(r.malformed(format!("flow {id} at or past next_id")));
            }
            let st = FlowSlot {
                id,
                flow,
                linked: bool::get(r)?,
                active_pos: NONE_U32,
                metered: bool::get(r)?,
                rate_epoch: u64::get(r)?,
                since: SimTime::get(r)?,
            };
            if net.index.insert(id, s as u32).is_some() {
                return Err(r.malformed(format!("duplicate flow id {id}")));
            }
            net.slots.push(Some(st));
        }
        net.flow_in_region = vec![false; n_slots];
        net.free_slots = Vec::<u32>::get(r)?;
        {
            let mut seen = vec![false; n_slots];
            for &s in &net.free_slots {
                let live = net.slots.get(s as usize).map(|o| o.is_some());
                if live != Some(false) || std::mem::replace(&mut seen[s as usize], true) {
                    return Err(r.malformed("free-slot list inconsistent with slot table"));
                }
            }
            let holes = net.slots.iter().filter(|s| s.is_none()).count();
            if holes != net.free_slots.len() {
                return Err(r.malformed("slot hole not on the free list"));
            }
        }
        net.link_load_bps = Vec::<f64>::get(r)?;
        net.cum_tx_bytes = Vec::<f64>::get(r)?;
        net.cbr_requested_bps = Vec::<f64>::get(r)?;
        net.cbr_scale = Vec::<f64>::get(r)?;
        net.cbr_load_bps = Vec::<f64>::get(r)?;
        net.metered_nodes = Option::<Vec<bool>>::get(r)?;
        net.node_rate_bps = Vec::<f64>::get(r)?;
        net.node_since = Vec::<SimTime>::get(r)?;
        for (name, len, want) in [
            ("link_load_bps", net.link_load_bps.len(), n_links),
            ("cbr_requested_bps", net.cbr_requested_bps.len(), n_links),
            ("cbr_scale", net.cbr_scale.len(), n_links),
            ("cbr_load_bps", net.cbr_load_bps.len(), n_links),
            ("cum_tx_bytes", net.cum_tx_bytes.len(), n_nodes),
            ("node_rate_bps", net.node_rate_bps.len(), n_nodes),
            ("node_since", net.node_since.len(), n_nodes),
            (
                "metered_nodes",
                net.metered_nodes.as_ref().map_or(n_nodes, |m| m.len()),
                n_nodes,
            ),
        ] {
            if len != want {
                return Err(r.malformed(format!("{name} length {len}, want {want}")));
            }
        }
        for s in 0..n_slots {
            // Two-phase to appease the borrow checker: clone the hop list,
            // then intern it.
            let hops: Option<Vec<LinkId>> = net.slots[s]
                .as_ref()
                .map(|st| st.flow.path.links().to_vec());
            if let Some(hops) = hops {
                net.slot_hops.set(s, &hops);
            }
        }
        for l in 0..n_links {
            for cbr_list in [false, true] {
                let n = u64::get(r)? as usize;
                if n > r.remaining() / 8 {
                    return Err(r.malformed("incidence list exceeds section size"));
                }
                for _ in 0..n {
                    let slot = u32::get(r)?;
                    let k = u32::get(r)?;
                    let (linked, is_cbr) = net
                        .slots
                        .get(slot as usize)
                        .and_then(|o| o.as_ref())
                        .map(|st| (st.linked, matches!(st.flow.spec.kind, FlowKind::Cbr { .. })))
                        .ok_or_else(|| r.malformed("incidence entry references dead slot"))?;
                    if !linked || is_cbr != cbr_list {
                        return Err(r.malformed("incidence entry in wrong list"));
                    }
                    if k as usize >= net.slot_hops.n(slot)
                        || net.slot_hops.link(slot, k as usize) != l as u32
                    {
                        return Err(r.malformed("incidence entry does not match flow path"));
                    }
                    if net.slot_hops.pos(slot, k as usize) != NONE_U32 {
                        return Err(r.malformed("duplicate incidence entry"));
                    }
                    let e = LinkEntry { slot, k };
                    let pos = if cbr_list {
                        net.link_cbr_flows.push(l, e)
                    } else {
                        net.link_flows.push(l, e)
                    };
                    net.slot_hops.set_pos(slot, k as usize, pos);
                }
            }
        }
        for s in 0..n_slots {
            let Some(st) = &net.slots[s] else { continue };
            if !st.linked {
                continue;
            }
            for k in 0..net.slot_hops.n(s as u32) {
                if net.slot_hops.pos(s as u32, k) == NONE_U32 {
                    return Err(r.malformed("linked flow missing an incidence entry"));
                }
            }
        }
        let heap = Vec::<(SimTime, u64, u64)>::get(r)?;
        net.heap = heap.into_iter().map(Reverse).collect();
        let active = Vec::<u32>::get(r)?;
        for (i, &s) in active.iter().enumerate() {
            let st = net
                .slots
                .get_mut(s as usize)
                .and_then(|o| o.as_mut())
                .ok_or_else(|| r.malformed("active entry references dead slot"))?;
            if !st.metered || st.active_pos != NONE_U32 {
                return Err(r.malformed("active entry invalid or duplicated"));
            }
            st.active_pos = i as u32;
        }
        net.active = active;
        net.stats = NetStats::get(r)?;
        net.rates_dirty = false;
        Ok(net)
    }

    // --- reference cross-check ------------------------------------------

    /// Solve the whole network with the retained reference allocator
    /// ([`max_min_fair`]), exactly as the pre-incremental engine did on
    /// every recompute. Kept public for differential tests and benchmarks.
    pub fn reference_allocation(&self) -> Allocation {
        let caps: Vec<f64> = (0..self.topo.num_links())
            .map(|l| self.topo.link(LinkId(l as u32)).capacity_bps)
            .collect();
        let link_lists: Vec<Vec<usize>> = self
            .flows()
            .map(|(_, f)| {
                if f.is_complete() {
                    Vec::new()
                } else {
                    f.path.links().iter().map(|l| l.0 as usize).collect()
                }
            })
            .collect();
        let flow_paths: Vec<FlowPath<'_>> = self
            .flows()
            .zip(link_lists.iter())
            .map(|((_, f), links)| FlowPath {
                links,
                cbr_rate_bps: match f.spec.kind {
                    _ if f.is_complete() => None,
                    FlowKind::Adaptive => None,
                    FlowKind::Cbr { rate_bps } => Some(rate_bps),
                },
            })
            .collect();
        max_min_fair(&caps, &flow_paths)
    }

    /// Assert that the incremental engine's rates and link loads match a
    /// from-scratch reference solve to within relative 1e-6. Runs after
    /// every recompute in debug builds; the differential test suite calls
    /// it explicitly in release.
    pub fn assert_matches_reference(&self) {
        let reference = self.reference_allocation();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
        for ((id, f), &want) in self.flows().zip(reference.rates_bps.iter()) {
            assert!(
                close(f.rate_bps, want),
                "flow {id:?}: incremental rate {} vs reference {want}",
                f.rate_bps
            );
        }
        for (l, &want) in reference.link_load_bps.iter().enumerate() {
            let got = self.link_load_bps[l];
            assert!(
                close(got, want),
                "link {l}: incremental load {got} vs reference {want}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use crate::topology::{build_multi_rack, MultiRack, MultiRackParams};

    fn small() -> MultiRack {
        build_multi_rack(&MultiRackParams {
            racks: 2,
            servers_per_rack: 2,
            nic_bps: 1e9,
            trunk_count: 2,
            trunk_bps: 1e9,
        })
    }

    fn cross_rack_path(mr: &MultiRack, s: usize, d: usize, trunk: usize) -> Path {
        let t = &mr.topology;
        let src = mr.servers[s];
        let dst = mr.servers[d];
        let sr = t.node(src).rack().unwrap() as usize;
        let dr = t.node(dst).rack().unwrap() as usize;
        let up = t.find_link(src, mr.tors[sr], 0).unwrap();
        let tr = t.find_link(mr.tors[sr], mr.tors[dr], trunk).unwrap();
        let down = t.find_link(mr.tors[dr], dst, 0).unwrap();
        Path::new(t, vec![up, tr, down]).unwrap()
    }

    #[test]
    fn single_flow_runs_at_bottleneck_and_completes_on_time() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let tuple = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        // 1 Gb/s bottleneck; 125 MB should take exactly 1 s.
        let path = cross_rack_path(&mr, 0, 2, 0);
        let id = net.start_flow(FlowSpec::tcp_transfer(tuple, 125_000_000), path);
        net.recompute();
        let (t, fid) = net.next_completion().unwrap();
        assert_eq!(fid, id);
        assert_eq!(t, SimTime::from_secs(1));
        let done = net.advance_to(t);
        assert_eq!(done, vec![id]);
        let rep = net.remove_flow(id);
        assert!((rep.transferred_bytes - 125_000_000.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_same_nic_share_then_speed_up() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        // Both flows leave server0 → its NIC (1 Gb/s) is the bottleneck.
        let t1 = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        let t2 = FiveTuple::tcp(mr.servers[0], mr.servers[3], 40001, 50060);
        let f1 = net.start_flow(
            FlowSpec::tcp_transfer(t1, 62_500_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        let f2 = net.start_flow(
            FlowSpec::tcp_transfer(t2, 125_000_000),
            cross_rack_path(&mr, 0, 3, 1),
        );
        net.recompute();
        assert!((net.flow(f1).unwrap().rate_bps - 0.5e9).abs() < 1.0);
        // f1 finishes at 1 s (62.5 MB at 500 Mb/s).
        let (t, fid) = net.next_completion().unwrap();
        assert_eq!(fid, f1);
        assert_eq!(t, SimTime::from_secs(1));
        net.advance_to(t);
        net.remove_flow(f1);
        net.recompute();
        // f2 now gets the full NIC: 62.5 MB left at 1 Gb/s = 0.5 s more.
        let (t2c, fid2) = net.next_completion().unwrap();
        assert_eq!(fid2, f2);
        assert_eq!(t2c, SimTime::from_millis(1500));
    }

    #[test]
    fn cbr_background_squeezes_tcp() {
        let mr = small();
        let t = &mr.topology;
        let mut net = FlowNet::new(t.clone());
        // CBR filling 80% of trunk 0.
        let trunk = t.find_link(mr.tors[0], mr.tors[1], 0).unwrap();
        let bg_tuple = FiveTuple::udp(mr.tors[0], mr.tors[1], 1, 2);
        let bg_path = Path::new(t, vec![trunk]).unwrap();
        net.start_flow(FlowSpec::cbr(bg_tuple, 0.8e9), bg_path);
        let ft = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        let f = net.start_flow(
            FlowSpec::tcp_transfer(ft, 100_000_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        net.recompute();
        assert!((net.flow(f).unwrap().rate_bps - 0.2e9).abs() < 1e3);
        assert!(net.link_utilization(trunk) > 0.99);
    }

    #[test]
    fn cum_tx_bytes_tracks_source() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let tuple = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        net.start_flow(
            FlowSpec::tcp_transfer(tuple, 125_000_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        net.recompute();
        net.advance_to(SimTime::from_millis(500));
        let got = net.cum_tx_bytes(mr.servers[0]);
        assert!((got - 62_500_000.0).abs() < 1.0, "got {got}");
        assert_eq!(net.cum_tx_bytes(mr.servers[1]), 0.0);
    }

    #[test]
    fn reroute_preserves_progress() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let tuple = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        let f = net.start_flow(
            FlowSpec::tcp_transfer(tuple, 125_000_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        net.recompute();
        net.advance_to(SimTime::from_millis(400));
        net.reroute_flow(f, cross_rack_path(&mr, 0, 2, 1));
        net.recompute();
        let af = net.flow(f).unwrap();
        assert!((af.transferred_bytes - 50_000_000.0).abs() < 1.0);
        // Completion still at exactly 1 s: same bottleneck rate.
        assert_eq!(net.next_completion().unwrap().0, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "stale rates")]
    fn stale_rates_detected() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let tuple = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        net.start_flow(
            FlowSpec::tcp_transfer(tuple, 1000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        // recompute() deliberately skipped.
        net.advance_to(SimTime::from_secs(1));
    }

    #[test]
    fn epoch_bumps_on_recompute() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let e0 = net.epoch();
        net.recompute();
        assert_eq!(net.epoch(), e0 + 1);
    }

    #[test]
    fn completed_flow_stops_consuming() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let t1 = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        let t2 = FiveTuple::tcp(mr.servers[1], mr.servers[2], 40001, 50060);
        let f1 = net.start_flow(
            FlowSpec::tcp_transfer(t1, 1_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        let f2 = net.start_flow(
            FlowSpec::tcp_transfer(t2, 1_000_000_000),
            cross_rack_path(&mr, 1, 2, 0),
        );
        net.recompute();
        let (t, _) = net.next_completion().unwrap();
        net.advance_to(t);
        // f1 done but not yet removed; recompute must hand everything to f2.
        net.recompute();
        assert_eq!(net.flow(f1).unwrap().rate_bps, 0.0);
        // Destination NIC is the shared bottleneck (1 Gb/s).
        assert!((net.flow(f2).unwrap().rate_bps - 1e9).abs() < 1e3);
    }

    #[test]
    fn zero_capacity_link_has_finite_utilization() {
        let mr = small();
        let t = &mr.topology;
        let trunk = t.find_link(mr.tors[0], mr.tors[1], 0).unwrap();
        let mut net = FlowNet::new(t.clone());
        net.set_link_capacity(trunk, 0.0);
        net.recompute();
        let u = net.link_utilization(trunk);
        assert!(u.is_finite(), "utilization must not be NaN/inf, got {u}");
        assert_eq!(u, 1.0, "a dead link reads as saturated");
    }

    #[test]
    fn incremental_matches_reference_through_flow_churn() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let t1 = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        let t2 = FiveTuple::tcp(mr.servers[0], mr.servers[3], 40001, 50060);
        let f1 = net.start_flow(
            FlowSpec::tcp_transfer(t1, 50_000_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        net.recompute();
        net.assert_matches_reference();
        let f2 = net.start_flow(
            FlowSpec::tcp_transfer(t2, 80_000_000),
            cross_rack_path(&mr, 0, 3, 1),
        );
        net.recompute();
        net.assert_matches_reference();
        net.advance_to(SimTime::from_millis(100));
        net.reroute_flow(f2, cross_rack_path(&mr, 0, 3, 0));
        net.recompute();
        net.assert_matches_reference();
        net.remove_flow(f1);
        net.recompute();
        net.assert_matches_reference();
        net.full_recompute();
        net.assert_matches_reference();
    }

    /// Drive exact and relaxed nets through the same churn (start, share,
    /// complete, remove) with a solve after every mutation: rates are then
    /// identical, so completions and byte counters must agree to rounding.
    #[test]
    fn relaxed_matches_exact_through_churn() {
        let mr = small();
        let mut exact = FlowNet::new(mr.topology.clone());
        let mut relaxed = FlowNet::new(mr.topology.clone());
        relaxed.set_relaxed_order(true);
        for net in [&mut exact, &mut relaxed] {
            let t1 = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
            let t2 = FiveTuple::tcp(mr.servers[0], mr.servers[3], 40001, 50060);
            net.start_flow(
                FlowSpec::tcp_transfer(t1, 62_500_000),
                cross_rack_path(&mr, 0, 2, 0),
            );
            net.start_flow(
                FlowSpec::tcp_transfer(t2, 125_000_000),
                cross_rack_path(&mr, 0, 3, 1),
            );
            net.recompute();
        }
        while let Some((te, fe)) = exact.next_completion() {
            let (tr, fr) = relaxed.next_completion().unwrap();
            assert_eq!(fe, fr);
            let dt = (te.as_secs_f64() - tr.as_secs_f64()).abs();
            assert!(dt <= 1e-6 * te.as_secs_f64().max(1.0), "dt {dt}");
            let t = te.max(tr);
            let de: Vec<FlowId> = exact.advance_to(t).to_vec();
            let dr: Vec<FlowId> = relaxed.advance_to(t).to_vec();
            assert_eq!(de, dr);
            let ce = exact.cum_tx_bytes(mr.servers[0]);
            let cr = relaxed.cum_tx_bytes(mr.servers[0]);
            assert!((ce - cr).abs() <= 8.0, "cum {ce} vs {cr}");
            for id in de {
                let re = exact.remove_flow(id);
                let rr = relaxed.remove_flow(id);
                assert!((re.transferred_bytes - rr.transferred_bytes).abs() <= 8.0);
                assert_eq!(re.ended_at, t);
                assert_eq!(rr.ended_at, t);
            }
            exact.recompute();
            relaxed.recompute();
        }
        assert!(relaxed.next_completion().is_none());
    }

    /// Many disjoint rack-local components, solved sequentially and with
    /// 4 workers: the canonical write-back makes the results — rates,
    /// loads, byte counters — bitwise identical.
    #[test]
    fn parallel_component_solve_is_worker_count_invariant() {
        let build = |workers: usize| {
            let mr = build_multi_rack(&MultiRackParams {
                racks: 8,
                servers_per_rack: 40,
                nic_bps: 1e9,
                trunk_count: 2,
                trunk_bps: 1e9,
            });
            let t = &mr.topology;
            let mut net = FlowNet::new(t.clone());
            net.set_relaxed_order(true);
            net.set_solver_workers(workers);
            // 320 rack-local flows in 8+ disjoint components — well past
            // the sequential cutoff.
            for (i, &s) in mr.servers.iter().enumerate() {
                let rack = t.node(s).rack().unwrap() as usize;
                let up = t.find_link(s, mr.tors[rack], 0).unwrap();
                let tuple = FiveTuple::tcp(s, mr.tors[rack], 40000 + i as u16, 50060);
                net.start_flow(
                    FlowSpec::tcp_transfer(tuple, 10_000_000 + (i as u64) * 1000),
                    Path::new(t, vec![up]).unwrap(),
                );
            }
            net.recompute();
            net.advance_to(SimTime::from_millis(10));
            (mr, net)
        };
        let (mr, mut seq) = build(1);
        let (_, mut par) = build(4);
        let rates_seq: Vec<f64> = seq.flows().map(|(_, f)| f.rate_bps).collect();
        let rates_par: Vec<f64> = par.flows().map(|(_, f)| f.rate_bps).collect();
        assert_eq!(rates_seq, rates_par);
        for &s in &mr.servers {
            assert_eq!(seq.cum_tx_bytes(s).to_bits(), par.cum_tx_bytes(s).to_bits());
        }
        let (ts, fs) = seq.next_completion().unwrap();
        let (tp, fp) = par.next_completion().unwrap();
        assert_eq!((ts, fs), (tp, fp));
    }

    /// A relaxed flow whose bytes drain at a fold outside `advance_to`
    /// (rate raised mid-flight, shortening the true completion past the
    /// old ceil projection) must still be reaped by the next advance.
    #[test]
    fn relaxed_fold_drain_is_reaped() {
        let mr = small();
        let t = &mr.topology;
        let mut net = FlowNet::new(t.clone());
        net.set_relaxed_order(true);
        let t1 = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        let t2 = FiveTuple::tcp(mr.servers[0], mr.servers[3], 40001, 50060);
        let f1 = net.start_flow(
            FlowSpec::tcp_transfer(t1, 62_500_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        let f2 = net.start_flow(
            FlowSpec::tcp_transfer(t2, 125_000_000),
            cross_rack_path(&mr, 0, 3, 1),
        );
        net.recompute();
        // Both at 500 Mb/s; f1 projects at 1 s. Advance almost there,
        // then remove f2 — f1's rate doubles at the solve's fold point.
        net.advance_to(SimTime::from_millis(999));
        net.remove_flow(f2);
        net.recompute();
        let (tc, fc) = net.next_completion().unwrap();
        assert_eq!(fc, f1);
        assert!(tc > SimTime::from_millis(999) && tc <= SimTime::from_secs(1));
        let done = net.advance_to(tc).to_vec();
        assert_eq!(done, vec![f1]);
        let rep = net.remove_flow(f1);
        assert!((rep.transferred_bytes - 62_500_000.0).abs() <= 8.0);
    }

    #[test]
    #[should_panic(expected = "before flows start")]
    fn relaxed_toggle_rejected_after_flows() {
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let tuple = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        net.start_flow(
            FlowSpec::tcp_transfer(tuple, 1000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        net.set_relaxed_order(true);
    }

    /// Checkpoint a mid-run network (degraded link, live + completed
    /// flows, CBR background), restore it into a pristine topology, and
    /// check: the re-snapshot is byte-identical and both copies finish
    /// the run with bitwise-equal byte counters.
    #[test]
    fn state_round_trip_resumes_identically() {
        use pythia_snapshot::{Reader, Writer};
        for relaxed in [false, true] {
            let mr = small();
            let t = &mr.topology;
            let mut net = FlowNet::new(t.clone());
            if relaxed {
                net.set_relaxed_order(relaxed);
            }
            // CBR background on trunk 1, plus two competing transfers.
            let trunk1 = t.find_link(mr.tors[0], mr.tors[1], 1).unwrap();
            net.start_flow(
                FlowSpec::cbr(FiveTuple::udp(mr.tors[0], mr.tors[1], 1, 2), 0.4e9),
                Path::new(t, vec![trunk1]).unwrap(),
            );
            let t1 = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
            let t2 = FiveTuple::tcp(mr.servers[0], mr.servers[3], 40001, 50060);
            net.start_flow(
                FlowSpec::tcp_transfer(t1, 62_500_000),
                cross_rack_path(&mr, 0, 2, 0),
            );
            net.start_flow(
                FlowSpec::tcp_transfer(t2, 125_000_000),
                cross_rack_path(&mr, 0, 3, 1),
            );
            net.recompute();
            net.advance_to(SimTime::from_millis(300));
            // A degradation that must survive the round trip.
            let trunk0 = t.find_link(mr.tors[0], mr.tors[1], 0).unwrap();
            net.set_link_capacity(trunk0, 0.5e9);
            net.recompute();
            net.advance_to(SimTime::from_millis(400));

            let mut w = Writer::new();
            w.section("net", |s| net.put_state(s));
            let bytes = w.finish();
            let mut sec = Reader::new(&bytes).unwrap().section("net").unwrap();
            let mut restored = FlowNet::get_state(mr.topology.clone(), &mut sec).unwrap();
            sec.finish().unwrap();
            assert_eq!(restored.relaxed_order(), relaxed);
            assert_eq!(
                restored.topology().link(trunk0).capacity_bps,
                0.5e9,
                "degraded capacity must survive restore"
            );
            let mut w2 = Writer::new();
            w2.section("net", |s| restored.put_state(s));
            assert_eq!(bytes, w2.finish(), "re-snapshot must be byte-identical");

            // Drive both to completion in lock-step.
            loop {
                let a = net.next_completion();
                let b = restored.next_completion();
                assert_eq!(a, b);
                let Some((tc, _)) = a else { break };
                let da: Vec<FlowId> = net.advance_to(tc).to_vec();
                let db: Vec<FlowId> = restored.advance_to(tc).to_vec();
                assert_eq!(da, db);
                for id in da {
                    let ra = net.remove_flow(id);
                    let rb = restored.remove_flow(id);
                    assert_eq!(
                        ra.transferred_bytes.to_bits(),
                        rb.transferred_bytes.to_bits()
                    );
                    assert_eq!(ra.ended_at, rb.ended_at);
                }
                net.recompute();
                restored.recompute();
                assert_eq!(net.epoch(), restored.epoch());
            }
            for &s in &mr.servers {
                assert_eq!(
                    net.cum_tx_bytes(s).to_bits(),
                    restored.cum_tx_bytes(s).to_bits()
                );
            }
        }
    }

    /// A snapshot whose cross-references were damaged must surface a
    /// typed error from restore, never a panic.
    #[test]
    fn corrupt_state_is_a_typed_error() {
        use pythia_snapshot::{Reader, SnapshotError, Writer};
        let mr = small();
        let mut net = FlowNet::new(mr.topology.clone());
        let tuple = FiveTuple::tcp(mr.servers[0], mr.servers[2], 40000, 50060);
        net.start_flow(
            FlowSpec::tcp_transfer(tuple, 125_000_000),
            cross_rack_path(&mr, 0, 2, 0),
        );
        net.recompute();
        let mut w = Writer::new();
        w.section("net", |s| net.put_state(s));
        let good = w.finish();
        // Restoring against a *different* topology (wrong link count)
        // must fail with Malformed, not index out of bounds.
        let tiny = build_multi_rack(&MultiRackParams {
            racks: 2,
            servers_per_rack: 1,
            nic_bps: 1e9,
            trunk_count: 1,
            trunk_bps: 1e9,
        });
        let mut sec = Reader::new(&good).unwrap().section("net").unwrap();
        let err = match FlowNet::get_state(tiny.topology.clone(), &mut sec) {
            Err(e) => e,
            Ok(_) => panic!("restore against wrong topology must fail"),
        };
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }

    #[test]
    fn disjoint_components_keep_rates_on_unrelated_churn() {
        // Two flows in different racks, paths sharing no links. Removing
        // one must not perturb (or even re-derive) the other's rate.
        let mr = small();
        let t = &mr.topology;
        let mut net = FlowNet::new(t.clone());
        // Rack-local flows: server -> ToR link only.
        let up0 = t.find_link(mr.servers[0], mr.tors[0], 0).unwrap();
        let up2 = t.find_link(mr.servers[2], mr.tors[1], 0).unwrap();
        let ta = FiveTuple::tcp(mr.servers[0], mr.tors[0], 40000, 50060);
        let tb = FiveTuple::tcp(mr.servers[2], mr.tors[1], 40001, 50060);
        let fa = net.start_flow(
            FlowSpec::tcp_transfer(ta, 500_000_000),
            Path::new(t, vec![up0]).unwrap(),
        );
        let fb = net.start_flow(
            FlowSpec::tcp_transfer(tb, 500_000_000),
            Path::new(t, vec![up2]).unwrap(),
        );
        net.recompute();
        let ra = net.flow(fa).unwrap().rate_bps;
        let eb = net.epoch();
        net.advance_to(SimTime::from_millis(10));
        net.remove_flow(fb);
        net.recompute();
        assert!(net.epoch() > eb);
        // fa's component was untouched: identical rate, bit for bit.
        assert_eq!(net.flow(fa).unwrap().rate_bps, ra);
        net.assert_matches_reference();
    }
}
