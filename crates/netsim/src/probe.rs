//! NetFlow-style measurement probes.
//!
//! The paper's Figure 5 methodology: NetFlow probes on every server export
//! per-flow byte counts to a collector; post-processing produces the
//! **cumulative shuffle-traffic volume sourced by each server over time**,
//! which is then compared against Pythia's predictions.
//!
//! [`NetFlowProbe`] reproduces that pipeline: the engine calls
//! [`NetFlowProbe::sample`] periodically (and at flow events), and the
//! probe appends `(t, cumulative bytes)` points per source node.

use pythia_des::SimTime;
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};

use crate::net::FlowNet;
use crate::topology::NodeId;

/// A `(time, cumulative bytes)` step curve for one traffic source.
#[derive(Debug, Clone, Default)]
pub struct CumulativeCurve {
    points: Vec<(SimTime, f64)>,
}

impl CumulativeCurve {
    /// Append a sample; time and value must be monotone. The value slack
    /// is a few bytes: relaxed-order accounting projects completions a
    /// byte-ceil long and takes the clamped excess back out at the fold,
    /// so a counter sampled in between can dip by that much.
    ///
    /// Samples are delta-encoded: a push that repeats the last value is
    /// elided (the step curve is unchanged between the two times), and a
    /// re-sample at the last point's timestamp overwrites it (the old
    /// dense representation kept both and every reader took the last of
    /// duplicate timestamps — see [`CumulativeCurve::value_at`]). Both
    /// rules leave `value_at`/`total`/`time_to_reach` observations exactly
    /// as a dense append would; a curve's first sample is always kept so
    /// an idle source still records a curve.
    pub fn push(&mut self, t: SimTime, bytes: f64) {
        if let Some(last) = self.points.last_mut() {
            debug_assert!(t >= last.0, "curve points must be time-ordered");
            debug_assert!(bytes + 4.0 >= last.1, "cumulative curve must be monotone");
            if bytes == last.1 {
                return;
            }
            if t == last.0 {
                last.1 = bytes;
                return;
            }
        }
        self.points.push((t, bytes));
    }

    /// Pre-size the backing buffer for `additional` further samples, so a
    /// scenario with a known fetch count appends without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.points.reserve(additional);
    }

    /// The raw `(time, cumulative bytes)` samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Final cumulative value.
    pub fn total(&self) -> f64 {
        self.points.last().map(|&(_, b)| b).unwrap_or(0.0)
    }

    /// Value of the step curve at time `t` (last sample at or before `t`).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => {
                // Several samples can share a timestamp; take the last.
                let mut j = i;
                while j + 1 < self.points.len() && self.points[j + 1].0 == t {
                    j += 1;
                }
                self.points[j].1
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Earliest time at which the curve reaches `level` (linear within the
    /// step is not interpolated — this is the conservative step semantics a
    /// NetFlow collector sees). Returns `None` if never reached.
    pub fn time_to_reach(&self, level: f64) -> Option<SimTime> {
        self.points
            .iter()
            .find(|&&(_, b)| b + 1e-6 >= level)
            .map(|&(t, _)| t)
    }
}

/// Collector of per-source cumulative traffic curves.
///
/// Curves live in a dense vector parallel to the (sorted) watch list, so
/// the periodic [`NetFlowProbe::sample`] tick is a straight zip over two
/// vectors — no tree lookups, no allocation after construction (beyond
/// the amortized curve-point appends themselves).
#[derive(Debug, Default)]
pub struct NetFlowProbe {
    /// Watched nodes, sorted by id and deduplicated; `curves[i]` is the
    /// curve of `watched[i]`.
    watched: Vec<NodeId>,
    curves: Vec<CumulativeCurve>,
}

impl NetFlowProbe {
    /// Probe the given source nodes (typically all Hadoop servers).
    pub fn new(mut watched: Vec<NodeId>) -> Self {
        watched.sort_unstable();
        watched.dedup();
        let curves = vec![CumulativeCurve::default(); watched.len()];
        NetFlowProbe { watched, curves }
    }

    /// Pre-size every curve for about `per_node` further samples (see
    /// [`CumulativeCurve::reserve`]) — called once at engine construction
    /// with the scenario's known per-server fetch count so steady-state
    /// sampling never reallocates.
    pub fn reserve(&mut self, per_node: usize) {
        for c in &mut self.curves {
            c.reserve(per_node);
        }
    }

    /// Record the current cumulative tx counters of every watched node.
    pub fn sample(&mut self, net: &FlowNet) {
        let t = net.now();
        for (&node, curve) in self.watched.iter().zip(self.curves.iter_mut()) {
            curve.push(t, net.cum_tx_bytes(node));
        }
    }

    /// Record the current counter of `node` alone (no-op if unwatched).
    /// Event-driven sampling: a flow completion touches only its own
    /// source's curve instead of every watched server's. A wave of
    /// completions at one timestamp collapses into a single point per
    /// node via the delta-encoded [`CumulativeCurve::push`].
    pub fn sample_node(&mut self, net: &FlowNet, node: NodeId) {
        if let Ok(i) = self.watched.binary_search(&node) {
            self.curves[i].push(net.now(), net.cum_tx_bytes(node));
        }
    }

    /// The curve recorded for `node`, if it was watched and sampled.
    pub fn curve(&self, node: NodeId) -> Option<&CumulativeCurve> {
        let i = self.watched.binary_search(&node).ok()?;
        let c = &self.curves[i];
        if c.is_empty() {
            None
        } else {
            Some(c)
        }
    }

    /// All recorded curves, in node order.
    pub fn curves(&self) -> impl Iterator<Item = (NodeId, &CumulativeCurve)> {
        self.watched
            .iter()
            .zip(self.curves.iter())
            .filter(|(_, c)| !c.is_empty())
            .map(|(&n, c)| (n, c))
    }
}

impl Persist for CumulativeCurve {
    fn put(&self, w: &mut SectionWriter) {
        self.points.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        let points = Vec::<(SimTime, f64)>::get(r)?;
        for win in points.windows(2) {
            if win[1].0 < win[0].0 {
                return Err(r.malformed("curve points out of time order"));
            }
        }
        Ok(CumulativeCurve { points })
    }
}

impl Persist for NetFlowProbe {
    fn put(&self, w: &mut SectionWriter) {
        self.watched.put(w);
        (self.curves.len() as u64).put(w);
        for c in &self.curves {
            c.put(w);
        }
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        let watched = Vec::<NodeId>::get(r)?;
        let n = u64::get(r)? as usize;
        if n != watched.len() {
            return Err(r.malformed("probe curve count != watch list length"));
        }
        let mut curves = Vec::with_capacity(n);
        for _ in 0..n {
            curves.push(CumulativeCurve::get(r)?);
        }
        Ok(NetFlowProbe { watched, curves })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FiveTuple, FlowSpec};
    use crate::routing::Path;
    use crate::topology::{build_multi_rack, MultiRackParams};

    #[test]
    fn curve_value_and_reach() {
        let mut c = CumulativeCurve::default();
        c.push(SimTime::from_secs(1), 100.0);
        c.push(SimTime::from_secs(2), 250.0);
        c.push(SimTime::from_secs(4), 250.0);
        assert_eq!(c.value_at(SimTime::ZERO), 0.0);
        assert_eq!(c.value_at(SimTime::from_secs(1)), 100.0);
        assert_eq!(c.value_at(SimTime::from_millis(1500)), 100.0);
        assert_eq!(c.value_at(SimTime::from_secs(5)), 250.0);
        assert_eq!(c.time_to_reach(100.0), Some(SimTime::from_secs(1)));
        assert_eq!(c.time_to_reach(101.0), Some(SimTime::from_secs(2)));
        assert_eq!(c.time_to_reach(251.0), None);
        assert_eq!(c.total(), 250.0);
    }

    #[test]
    fn duplicate_timestamps_take_last() {
        let mut c = CumulativeCurve::default();
        c.push(SimTime::from_secs(1), 10.0);
        c.push(SimTime::from_secs(1), 20.0);
        assert_eq!(c.value_at(SimTime::from_secs(1)), 20.0);
    }

    #[test]
    fn delta_encoding_preserves_observations() {
        let mut c = CumulativeCurve::default();
        c.push(SimTime::ZERO, 0.0);
        // Flat re-sample: the step curve is unchanged, point elided.
        c.push(SimTime::from_secs(1), 0.0);
        assert_eq!(c.points().len(), 1);
        assert_eq!(c.value_at(SimTime::from_secs(1)), 0.0);
        c.push(SimTime::from_secs(2), 50.0);
        // Same-instant re-sample: overwrite, matching the old take-last
        // read semantics for duplicate timestamps.
        c.push(SimTime::from_secs(2), 75.0);
        assert_eq!(c.points().len(), 2);
        assert_eq!(c.value_at(SimTime::from_secs(2)), 75.0);
        assert_eq!(c.total(), 75.0);
        assert_eq!(c.time_to_reach(50.0), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn probe_tracks_flow_progress() {
        let mr = build_multi_rack(&MultiRackParams::default());
        let t = &mr.topology;
        let mut net = crate::net::FlowNet::new(t.clone());
        let s0 = mr.servers[0];
        let s5 = mr.servers[5];
        let up = t.find_link(s0, mr.tors[0], 0).unwrap();
        let tr = t.find_link(mr.tors[0], mr.tors[1], 0).unwrap();
        let down = t.find_link(mr.tors[1], s5, 0).unwrap();
        let path = Path::new(t, vec![up, tr, down]).unwrap();
        let tuple = FiveTuple::tcp(s0, s5, 40000, 50060);
        net.start_flow(FlowSpec::tcp_transfer(tuple, 125_000_000), path);
        net.recompute();

        let mut probe = NetFlowProbe::new(vec![s0, s5]);
        probe.sample(&net);
        net.advance_to(SimTime::from_millis(500));
        probe.sample(&net);
        net.advance_to(SimTime::from_secs(1));
        probe.sample(&net);

        let curve = probe.curve(s0).unwrap();
        assert_eq!(curve.points().len(), 3);
        assert!((curve.total() - 125_000_000.0).abs() < 1.0);
        assert!((curve.value_at(SimTime::from_millis(500)) - 62_500_000.0).abs() < 1.0);
        // The destination sources nothing.
        assert_eq!(probe.curve(s5).unwrap().total(), 0.0);
    }
}
