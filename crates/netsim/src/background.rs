//! Background (over-subscription) traffic.
//!
//! The paper emulates network over-subscription by loading the inter-rack
//! links with iperf-generated **constant-bit-rate UDP** streams (§V-A).
//! An over-subscription ratio of `1:N` means the bandwidth left for the
//! application is `1/N` of the nominal trunk capacity, so the background
//! stream on each trunk link runs at `(1 - 1/N) × capacity`.

use crate::flow::{FiveTuple, FlowSpec};
use crate::topology::{LinkId, Topology};

/// Over-subscription ratio `1:N`. `OverSubscription::NONE` (1:1) injects no
/// background traffic at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OverSubscription(pub u32);

impl OverSubscription {
    /// No over-subscription (1:1): the full bisection is available.
    pub const NONE: OverSubscription = OverSubscription(1);

    /// Fraction of each trunk link consumed by background traffic.
    pub fn background_fraction(self) -> f64 {
        assert!(self.0 >= 1, "over-subscription ratio must be >= 1");
        1.0 - 1.0 / self.0 as f64
    }

    /// Fraction of each trunk link left for the application.
    pub fn available_fraction(self) -> f64 {
        1.0 / self.0 as f64
    }

    /// The conventional "1:N" label.
    pub fn label(self) -> String {
        format!("1:{}", self.0)
    }
}

/// UDP port used by the synthetic iperf streams.
pub const IPERF_PORT: u16 = 5001;

/// How the background load is distributed over parallel trunk cables.
///
/// The paper's motivating example (Figure 1b) is explicitly *asymmetric*:
/// "Path-1" at 95% buffer occupancy while "Path-2" is lightly loaded —
/// real datacenter background traffic is bursty and unevenly hashed.
/// [`BackgroundProfile::Fluctuating`] models that: the total background
/// volume per trunk direction stays at `(1 − 1/N) × aggregate capacity`,
/// but its split across the parallel cables is redrawn every `period`.
/// With a load-unaware scheduler, flows randomly land on the
/// currently-congested cable; a load-aware scheduler steers around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackgroundProfile {
    /// Every cable carries exactly `(1 − 1/N)` of its capacity, forever.
    Static,
    /// The per-direction total is redrawn across cables periodically.
    Fluctuating {
        /// Redraw period in simulated seconds.
        period_secs: f64,
        /// How lopsided the split may get: 0 = static, 1 = as asymmetric
        /// as the per-cable CBR cap allows.
        spread: f64,
    },
}

impl Default for BackgroundProfile {
    fn default() -> Self {
        BackgroundProfile::Fluctuating {
            period_secs: 10.0,
            spread: 0.3,
        }
    }
}

/// Redraw the background rates for one direction group of parallel cables
/// of equal capacity `cap_bps`. The sum of returned rates is
/// `frac × k × cap_bps` (the nominal symmetric total), each clamped to
/// `CBR_SHARE_LIMIT × cap_bps`, with the clamp remainder redistributed.
pub fn redraw_group_rates(
    cap_bps: f64,
    k: usize,
    frac: f64,
    spread: f64,
    rng: &mut impl rand::Rng,
) -> Vec<f64> {
    assert!(k >= 1);
    assert!((0.0..=1.0).contains(&frac));
    assert!((0.0..=1.0).contains(&spread));
    let total = frac * k as f64 * cap_bps;
    if k == 1 || frac == 0.0 || spread == 0.0 {
        return vec![frac * cap_bps; k];
    }
    // Random weights, spread-scaled around uniform.
    let raw: Vec<f64> = (0..k)
        .map(|_| 1.0 + spread * rng.random_range(-1.0..1.0f64))
        .collect();
    let sum: f64 = raw.iter().sum();
    let mut rates: Vec<f64> = raw.iter().map(|w| total * w / sum).collect();
    // Clamp to the CBR share limit, redistributing the excess among the
    // unclamped cables (a few passes converge for equal capacities).
    let cap = crate::fairshare::CBR_SHARE_LIMIT * cap_bps;
    for _ in 0..k {
        let excess: f64 = rates.iter().map(|&r| (r - cap).max(0.0)).sum();
        if excess <= 1e-9 {
            break;
        }
        let room: Vec<f64> = rates.iter().map(|&r| (cap - r).max(0.0)).collect();
        let room_total: f64 = room.iter().sum();
        for (r, rm) in rates.iter_mut().zip(room.iter()) {
            if *r > cap {
                *r = cap;
            } else if room_total > 0.0 {
                *r += excess * rm / room_total;
            }
        }
    }
    for r in rates.iter_mut() {
        *r = r.min(cap).max(0.0);
    }
    rates
}

/// Build one unbounded CBR flow per trunk link, sized for `ratio`.
///
/// Each flow's "path" is the single trunk link, and its endpoints are the
/// switches at the two ends — mirroring iperf endpoints placed so that each
/// stream congests exactly one inter-rack cable.
pub fn background_flows(
    topo: &Topology,
    trunk_links: &[LinkId],
    ratio: OverSubscription,
) -> Vec<(FlowSpec, Vec<LinkId>)> {
    let frac = ratio.background_fraction();
    if frac <= 0.0 {
        return Vec::new();
    }
    trunk_links
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let link = topo.link(l);
            let tuple = FiveTuple::udp(link.src, link.dst, 10_000 + i as u16, IPERF_PORT);
            let spec = FlowSpec::cbr(tuple, frac * link.capacity_bps);
            (spec, vec![l])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_multi_rack, MultiRackParams};

    #[test]
    fn fractions() {
        assert_eq!(OverSubscription::NONE.background_fraction(), 0.0);
        assert_eq!(OverSubscription(2).background_fraction(), 0.5);
        assert!((OverSubscription(20).background_fraction() - 0.95).abs() < 1e-12);
        assert!((OverSubscription(20).available_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(OverSubscription(10).label(), "1:10");
    }

    #[test]
    fn one_flow_per_trunk_link_with_correct_rate() {
        let mr = build_multi_rack(&MultiRackParams::default());
        let flows = background_flows(&mr.topology, &mr.trunk_links, OverSubscription(10));
        assert_eq!(flows.len(), mr.trunk_links.len());
        for ((spec, links), &trunk) in flows.iter().zip(mr.trunk_links.iter()) {
            assert_eq!(links, &vec![trunk]);
            match spec.kind {
                crate::flow::FlowKind::Cbr { rate_bps } => {
                    let cap = mr.topology.link(trunk).capacity_bps;
                    assert!((rate_bps - 0.9 * cap).abs() < 1.0);
                }
                _ => panic!("background must be CBR"),
            }
            assert!(spec.size_bytes.is_none(), "background is unbounded");
        }
    }

    #[test]
    fn redraw_preserves_total_and_caps() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        for &frac in &[0.5, 0.9, 0.95] {
            for &k in &[2usize, 4] {
                for _ in 0..50 {
                    let rates = redraw_group_rates(10e9, k, frac, 1.0, &mut rng);
                    assert_eq!(rates.len(), k);
                    let total: f64 = rates.iter().sum();
                    assert!(
                        (total - frac * k as f64 * 10e9).abs() < 1e7
                            || rates.iter().all(|&r| r > 0.99 * 0.995 * 10e9),
                        "total {total} for frac {frac} k {k}"
                    );
                    for &r in &rates {
                        assert!(r <= 0.995 * 10e9 + 1.0, "rate {r} over cap");
                        assert!(r >= 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn redraw_zero_spread_is_symmetric() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let rates = redraw_group_rates(10e9, 2, 0.9, 0.0, &mut rng);
        assert_eq!(rates, vec![9e9, 9e9]);
    }

    #[test]
    fn redraw_with_spread_is_asymmetric_sometimes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let mut max_gap: f64 = 0.0;
        for _ in 0..30 {
            let rates = redraw_group_rates(10e9, 2, 0.95, 1.0, &mut rng);
            max_gap = max_gap.max((rates[0] - rates[1]).abs());
        }
        // At 1:20-like load, the per-cable available bandwidth must swing
        // substantially between draws.
        assert!(max_gap > 0.3e9, "gap only {max_gap}");
    }

    #[test]
    fn no_background_at_ratio_one() {
        let mr = build_multi_rack(&MultiRackParams::default());
        let flows = background_flows(&mr.topology, &mr.trunk_links, OverSubscription::NONE);
        assert!(flows.is_empty());
    }
}
