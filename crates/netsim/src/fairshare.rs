//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Given a set of adaptive (TCP) flows with fixed paths and a set of CBR
//! (unreactive UDP) flows, compute the rate of every flow:
//!
//! 1. CBR flows take their requested rate first, clamped so that no link
//!    carries more than [`CBR_SHARE_LIMIT`] of its capacity in CBR traffic
//!    (saturating UDP never *completely* starves TCP in practice, and the
//!    clamp guarantees simulation progress).
//! 2. Adaptive flows split the residual capacity max-min fairly via the
//!    classic progressive-filling algorithm: repeatedly find the most
//!    constrained link, freeze the flows crossing it at its equal share,
//!    remove them, repeat.
//!
//! This is the standard fluid approximation for long-lived TCP flows
//! sharing a datacenter fabric, and is what makes the simulator's shuffle
//! completion times meaningful.

/// Maximum fraction of a link's capacity that CBR (UDP) traffic may occupy.
pub const CBR_SHARE_LIMIT: f64 = 0.995;

/// Description of one flow for the allocator: the links it crosses
/// (indices into the capacity array) and, for CBR, its requested rate.
#[derive(Debug, Clone)]
pub struct FlowPath<'a> {
    /// Indices into the capacity array of the links this flow crosses.
    pub links: &'a [usize],
    /// `None` for adaptive flows, `Some(rate)` for CBR.
    pub cbr_rate_bps: Option<f64>,
}

/// Result of a fair-share computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Rate of each input flow, in input order (bits/sec).
    pub rates_bps: Vec<f64>,
    /// Total committed rate per link (bits/sec).
    pub link_load_bps: Vec<f64>,
}

/// Compute max-min fair rates.
///
/// `link_capacity_bps[l]` is the capacity of link `l`; each flow's `links`
/// entries must index into that array.
pub fn max_min_fair(link_capacity_bps: &[f64], flows: &[FlowPath<'_>]) -> Allocation {
    let n_links = link_capacity_bps.len();
    let n_flows = flows.len();
    let mut rates = vec![0.0f64; n_flows];
    let mut link_load = vec![0.0f64; n_links];

    // --- Pass 1: CBR flows -------------------------------------------------
    // Requested CBR per link.
    let mut cbr_requested = vec![0.0f64; n_links];
    for f in flows {
        if let Some(r) = f.cbr_rate_bps {
            for &l in f.links {
                cbr_requested[l] += r;
            }
        }
    }
    // Per-link scale factor so CBR never exceeds CBR_SHARE_LIMIT * capacity.
    let scale: Vec<f64> = (0..n_links)
        .map(|l| {
            let cap = CBR_SHARE_LIMIT * link_capacity_bps[l];
            if cbr_requested[l] > cap {
                cap / cbr_requested[l]
            } else {
                1.0
            }
        })
        .collect();
    for (i, f) in flows.iter().enumerate() {
        if let Some(r) = f.cbr_rate_bps {
            let k = f
                .links
                .iter()
                .map(|&l| scale[l])
                .fold(1.0f64, f64::min);
            rates[i] = r * k;
            for &l in f.links {
                link_load[l] += rates[i];
            }
        }
    }

    // --- Pass 2: adaptive flows (progressive filling) ----------------------
    let mut residual: Vec<f64> = (0..n_links)
        .map(|l| (link_capacity_bps[l] - link_load[l]).max(0.0))
        .collect();
    // Unfrozen adaptive flow count per link.
    let mut count = vec![0usize; n_links];
    let mut unfrozen: Vec<usize> = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        // Flows with an empty link list are unconstrained placeholders
        // (e.g. completed-but-not-removed flows); they get rate 0.
        if f.cbr_rate_bps.is_none() && !f.links.is_empty() {
            unfrozen.push(i);
            for &l in f.links {
                count[l] += 1;
            }
        }
    }

    while !unfrozen.is_empty() {
        // Bottleneck share: the smallest equal-split share over loaded links.
        let mut min_share = f64::INFINITY;
        for l in 0..n_links {
            if count[l] > 0 {
                let share = residual[l] / count[l] as f64;
                if share < min_share {
                    min_share = share;
                }
            }
        }
        debug_assert!(min_share.is_finite());
        // Freeze every unfrozen flow that crosses a bottleneck link.
        // Tolerance handles floating-point ties.
        let eps = min_share * 1e-9 + 1e-6;
        let is_bottleneck: Vec<bool> = (0..n_links)
            .map(|l| count[l] > 0 && residual[l] / count[l] as f64 <= min_share + eps)
            .collect();
        let mut still: Vec<usize> = Vec::with_capacity(unfrozen.len());
        let mut froze_any = false;
        for &i in &unfrozen {
            let hits = flows[i].links.iter().any(|&l| is_bottleneck[l]);
            if hits {
                froze_any = true;
                rates[i] = min_share;
                for &l in flows[i].links {
                    residual[l] = (residual[l] - min_share).max(0.0);
                    count[l] -= 1;
                    link_load[l] += min_share;
                }
            } else {
                still.push(i);
            }
        }
        // Progress guarantee: min_share came from a link with count > 0, so
        // at least one flow crosses a bottleneck link.
        assert!(froze_any, "progressive filling failed to make progress");
        unfrozen = still;
    }

    Allocation {
        rates_bps: rates,
        link_load_bps: link_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive(links: &[usize]) -> FlowPath<'_> {
        FlowPath {
            links,
            cbr_rate_bps: None,
        }
    }

    fn cbr(links: &[usize], rate: f64) -> FlowPath<'_> {
        FlowPath {
            links,
            cbr_rate_bps: Some(rate),
        }
    }

    #[test]
    fn single_link_equal_split() {
        let caps = [100.0];
        let l0 = [0usize];
        let flows = vec![adaptive(&l0), adaptive(&l0), adaptive(&l0), adaptive(&l0)];
        let a = max_min_fair(&caps, &flows);
        for r in &a.rates_bps {
            assert!((r - 25.0).abs() < 1e-6, "rate {r}");
        }
        assert!((a.link_load_bps[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn classic_two_bottleneck_example() {
        // Link 0: cap 10 shared by f0, f1. Link 1: cap 100 used by f1, f2.
        // Max-min: f0 = f1 = 5 on link 0; f2 gets the rest of link 1 = 95.
        let caps = [10.0, 100.0];
        let p0 = [0usize];
        let p1 = [0usize, 1usize];
        let p2 = [1usize];
        let flows = vec![adaptive(&p0), adaptive(&p1), adaptive(&p2)];
        let a = max_min_fair(&caps, &flows);
        assert!((a.rates_bps[0] - 5.0).abs() < 1e-6);
        assert!((a.rates_bps[1] - 5.0).abs() < 1e-6);
        assert!((a.rates_bps[2] - 95.0).abs() < 1e-6);
    }

    #[test]
    fn cbr_takes_priority() {
        // CBR at 60 on a 100-cap link leaves 40 for two TCP flows.
        let caps = [100.0];
        let l0 = [0usize];
        let flows = vec![cbr(&l0, 60.0), adaptive(&l0), adaptive(&l0)];
        let a = max_min_fair(&caps, &flows);
        assert!((a.rates_bps[0] - 60.0).abs() < 1e-6);
        assert!((a.rates_bps[1] - 20.0).abs() < 1e-6);
        assert!((a.rates_bps[2] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn cbr_overload_is_clamped_and_tcp_survives() {
        let caps = [100.0];
        let l0 = [0usize];
        let flows = vec![cbr(&l0, 500.0), adaptive(&l0)];
        let a = max_min_fair(&caps, &flows);
        assert!(a.rates_bps[0] <= CBR_SHARE_LIMIT * 100.0 + 1e-9);
        assert!(a.rates_bps[1] > 0.0, "TCP must keep a nonzero share");
        assert!(a.link_load_bps[0] <= 100.0 + 1e-6);
    }

    #[test]
    fn work_conserving_on_bottleneck() {
        // One adaptive flow alone on a path takes the bottleneck capacity.
        let caps = [100.0, 40.0, 100.0];
        let p = [0usize, 1, 2];
        let flows = vec![adaptive(&p)];
        let a = max_min_fair(&caps, &flows);
        assert!((a.rates_bps[0] - 40.0).abs() < 1e-6);
    }

    #[test]
    fn removal_anomaly_is_real() {
        // Max-min fairness is NOT monotone under flow removal: removing C
        // unthrottles A on link 1, and A then takes more of link 0 away
        // from B. (Property-based testing of the flow network surfaced
        // this; the counterexample is pinned here.)
        let caps = [10.0, 2.0];
        let p_a = [0usize, 1];
        let p_b = [0usize];
        let p_c = [1usize];
        // With C: A is frozen at 1 by link 1 (shared with C); B gets 9.
        let with_c = max_min_fair(&caps, &[adaptive(&p_a), adaptive(&p_b), adaptive(&p_c)]);
        assert!((with_c.rates_bps[0] - 1.0).abs() < 1e-6);
        assert!((with_c.rates_bps[1] - 9.0).abs() < 1e-6);
        // Without C: A rises to 2, B *drops* to 8.
        let without_c = max_min_fair(&caps, &[adaptive(&p_a), adaptive(&p_b)]);
        assert!((without_c.rates_bps[0] - 2.0).abs() < 1e-6);
        assert!((without_c.rates_bps[1] - 8.0).abs() < 1e-6);
        assert!(without_c.rates_bps[1] < with_c.rates_bps[1]);
    }

    #[test]
    fn empty_input() {
        let a = max_min_fair(&[10.0], &[]);
        assert!(a.rates_bps.is_empty());
        assert_eq!(a.link_load_bps, vec![0.0]);
    }

    #[test]
    fn asymmetric_paths_share_fairly() {
        // Two disjoint links, one flow each, plus one flow crossing both.
        // cap = 30 each: crossing flow and each solo flow split both links:
        // share on each link = 15 — all three flows end at 15.
        let caps = [30.0, 30.0];
        let pa = [0usize];
        let pb = [1usize];
        let pab = [0usize, 1];
        let flows = vec![adaptive(&pa), adaptive(&pb), adaptive(&pab)];
        let a = max_min_fair(&caps, &flows);
        for r in &a.rates_bps {
            assert!((r - 15.0).abs() < 1e-6, "rate {r}");
        }
    }
}
