//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Given a set of adaptive (TCP) flows with fixed paths and a set of CBR
//! (unreactive UDP) flows, compute the rate of every flow:
//!
//! 1. CBR flows take their requested rate first, clamped so that no link
//!    carries more than [`CBR_SHARE_LIMIT`] of its capacity in CBR traffic
//!    (saturating UDP never *completely* starves TCP in practice, and the
//!    clamp guarantees simulation progress).
//! 2. Adaptive flows split the residual capacity max-min fairly via the
//!    classic progressive-filling algorithm: repeatedly find the most
//!    constrained link, freeze the flows crossing it at its equal share,
//!    remove them, repeat.
//!
//! This is the standard fluid approximation for long-lived TCP flows
//! sharing a datacenter fabric, and is what makes the simulator's shuffle
//! completion times meaningful.

/// Maximum fraction of a link's capacity that CBR (UDP) traffic may occupy.
pub const CBR_SHARE_LIMIT: f64 = 0.995;

/// Description of one flow for the allocator: the links it crosses
/// (indices into the capacity array) and, for CBR, its requested rate.
#[derive(Debug, Clone)]
pub struct FlowPath<'a> {
    /// Indices into the capacity array of the links this flow crosses.
    pub links: &'a [usize],
    /// `None` for adaptive flows, `Some(rate)` for CBR.
    pub cbr_rate_bps: Option<f64>,
}

/// Result of a fair-share computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Rate of each input flow, in input order (bits/sec).
    pub rates_bps: Vec<f64>,
    /// Total committed rate per link (bits/sec).
    pub link_load_bps: Vec<f64>,
}

/// Compute max-min fair rates.
///
/// `link_capacity_bps[l]` is the capacity of link `l`; each flow's `links`
/// entries must index into that array.
pub fn max_min_fair(link_capacity_bps: &[f64], flows: &[FlowPath<'_>]) -> Allocation {
    let n_links = link_capacity_bps.len();
    let n_flows = flows.len();
    let mut rates = vec![0.0f64; n_flows];
    let mut link_load = vec![0.0f64; n_links];

    // --- Pass 1: CBR flows -------------------------------------------------
    // Requested CBR per link.
    let mut cbr_requested = vec![0.0f64; n_links];
    for f in flows {
        if let Some(r) = f.cbr_rate_bps {
            for &l in f.links {
                cbr_requested[l] += r;
            }
        }
    }
    // Per-link scale factor so CBR never exceeds CBR_SHARE_LIMIT * capacity.
    let scale: Vec<f64> = (0..n_links)
        .map(|l| {
            let cap = CBR_SHARE_LIMIT * link_capacity_bps[l];
            if cbr_requested[l] > cap {
                cap / cbr_requested[l]
            } else {
                1.0
            }
        })
        .collect();
    for (i, f) in flows.iter().enumerate() {
        if let Some(r) = f.cbr_rate_bps {
            let k = f.links.iter().map(|&l| scale[l]).fold(1.0f64, f64::min);
            rates[i] = r * k;
            for &l in f.links {
                link_load[l] += rates[i];
            }
        }
    }

    // --- Pass 2: adaptive flows (progressive filling) ----------------------
    let mut residual: Vec<f64> = (0..n_links)
        .map(|l| (link_capacity_bps[l] - link_load[l]).max(0.0))
        .collect();
    // Unfrozen adaptive flow count per link.
    let mut count = vec![0usize; n_links];
    let mut unfrozen: Vec<usize> = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        // Flows with an empty link list are unconstrained placeholders
        // (e.g. completed-but-not-removed flows); they get rate 0.
        if f.cbr_rate_bps.is_none() && !f.links.is_empty() {
            unfrozen.push(i);
            for &l in f.links {
                count[l] += 1;
            }
        }
    }

    while !unfrozen.is_empty() {
        // Bottleneck share: the smallest equal-split share over loaded links.
        let mut min_share = f64::INFINITY;
        for l in 0..n_links {
            if count[l] > 0 {
                let share = residual[l] / count[l] as f64;
                if share < min_share {
                    min_share = share;
                }
            }
        }
        debug_assert!(min_share.is_finite());
        // Freeze every unfrozen flow that crosses a bottleneck link.
        // Tolerance handles floating-point ties.
        let eps = min_share * 1e-9 + 1e-6;
        let is_bottleneck: Vec<bool> = (0..n_links)
            .map(|l| count[l] > 0 && residual[l] / count[l] as f64 <= min_share + eps)
            .collect();
        let mut still: Vec<usize> = Vec::with_capacity(unfrozen.len());
        let mut froze_any = false;
        for &i in &unfrozen {
            let hits = flows[i].links.iter().any(|&l| is_bottleneck[l]);
            if hits {
                froze_any = true;
                rates[i] = min_share;
                for &l in flows[i].links {
                    residual[l] = (residual[l] - min_share).max(0.0);
                    count[l] -= 1;
                    link_load[l] += min_share;
                }
            } else {
                still.push(i);
            }
        }
        // Progress guarantee: min_share came from a link with count > 0, so
        // at least one flow crosses a bottleneck link.
        assert!(froze_any, "progressive filling failed to make progress");
        unfrozen = still;
    }

    Allocation {
        rates_bps: rates,
        link_load_bps: link_load,
    }
}

/// Allocation-free progressive filling.
///
/// [`max_min_fair`] allocates a handful of vectors per call and re-scans
/// every link and every unfrozen flow on every filling round, which makes
/// it the hot spot once thousands of flows are live. `FairShareWorkspace`
/// solves the identical problem with reusable scratch buffers and a CSR
/// link→flow adjacency so each round costs `O(live links)` plus the size
/// of the flows actually frozen, and steady-state recomputes allocate
/// nothing at all.
///
/// Usage per solve:
///
/// ```ignore
/// ws.begin(n_links);
/// ws.set_link(l, capacity_bps, cbr_requested_bps);   // for every link
/// ws.add_flow(local_link_ids, cbr_rate_bps);         // for every flow
/// ws.solve();
/// ws.rate_bps(flow_idx); ws.link_load_bps(l);
/// ```
///
/// Unlike [`max_min_fair`], the caller supplies the per-link CBR demand
/// (`cbr_requested_bps`) instead of having it re-derived from the flow
/// list; [`FlowNet`](crate::FlowNet) maintains that aggregate
/// incrementally across background-traffic redraws.
///
/// The result is equal to [`max_min_fair`] up to floating-point
/// summation order (flows are frozen per saturated link rather than in
/// input order); differences are a few ULPs per filling round.
#[derive(Debug, Default)]
pub struct FairShareWorkspace {
    // Per-solve inputs, staged by the caller.
    caps: Vec<f64>,
    cbr_requested: Vec<f64>,
    pre_load: Vec<f64>,
    flow_off: Vec<u32>,
    flow_links: Vec<u32>,
    /// Requested CBR rate per flow; negative ⇒ adaptive.
    flow_cbr: Vec<f64>,
    /// How many staged flows are CBR; lets adaptive-only solves (the
    /// common regional case) skip the CBR clamp pass entirely.
    n_cbr: usize,
    // Outputs.
    rates: Vec<f64>,
    link_load: Vec<f64>,
    // Scratch.
    scale: Vec<f64>,
    residual: Vec<f64>,
    count: Vec<u32>,
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    cursor: Vec<u32>,
    saturated: Vec<u32>,
    frozen: Vec<bool>,
    /// Cached equal-split share per live link (`residual / count`),
    /// refreshed only when freezing touches the link — the filling
    /// rounds' min/saturation scans then run division-free.
    share: Vec<f64>,
}

impl FairShareWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start staging a problem over `n_links` links. Every link must then
    /// be described via [`FairShareWorkspace::set_link`].
    pub fn begin(&mut self, n_links: usize) {
        self.caps.clear();
        self.caps.resize(n_links, 0.0);
        self.cbr_requested.clear();
        self.cbr_requested.resize(n_links, 0.0);
        self.pre_load.clear();
        self.pre_load.resize(n_links, 0.0);
        self.flow_off.clear();
        self.flow_off.push(0);
        self.flow_links.clear();
        self.flow_cbr.clear();
        self.n_cbr = 0;
    }

    /// Describe link `l` (a local index in `0..n_links`).
    pub fn set_link(&mut self, l: usize, capacity_bps: f64, cbr_requested_bps: f64) {
        self.caps[l] = capacity_bps;
        self.cbr_requested[l] = cbr_requested_bps;
    }

    /// Pre-commit `load_bps` on link `l` before the solve: the committed
    /// rate of flows solved *outside* this workspace (the layered CBR
    /// background pass). The load seeds `link_load_bps` and shrinks the
    /// residual available to the staged adaptive flows, exactly as if
    /// those flows had been staged and frozen first.
    pub fn preload_link(&mut self, l: usize, load_bps: f64) {
        self.pre_load[l] = load_bps;
    }

    /// Add a flow crossing the given local links. Returns its index in
    /// the staged problem (dense, in insertion order).
    pub fn add_flow<I>(&mut self, links: I, cbr_rate_bps: Option<f64>) -> usize
    where
        I: IntoIterator<Item = u32>,
    {
        let idx = self.flow_cbr.len();
        self.flow_links.extend(links);
        self.flow_off.push(self.flow_links.len() as u32);
        self.flow_cbr.push(cbr_rate_bps.unwrap_or(-1.0));
        if cbr_rate_bps.is_some() {
            self.n_cbr += 1;
        }
        idx
    }

    /// Number of staged flows.
    pub fn num_flows(&self) -> usize {
        self.flow_cbr.len()
    }

    /// Rate of staged flow `flow` after [`FairShareWorkspace::solve`].
    pub fn rate_bps(&self, flow: usize) -> f64 {
        self.rates[flow]
    }

    /// Committed load on local link `l` after [`FairShareWorkspace::solve`].
    pub fn link_load_bps(&self, l: usize) -> f64 {
        self.link_load[l]
    }

    /// Run the two-pass allocation (CBR clamp, then progressive filling)
    /// over the staged problem.
    pub fn solve(&mut self) {
        let FairShareWorkspace {
            caps,
            cbr_requested,
            pre_load,
            flow_off,
            flow_links,
            flow_cbr,
            n_cbr,
            rates,
            link_load,
            scale,
            residual,
            count,
            adj_off,
            adj,
            cursor,
            saturated,
            frozen,
            share,
        } = self;
        let n_links = caps.len();
        let n_flows = flow_cbr.len();
        let links_of = |f: usize| &flow_links[flow_off[f] as usize..flow_off[f + 1] as usize];

        rates.clear();
        rates.resize(n_flows, 0.0);
        link_load.clear();
        link_load.extend_from_slice(pre_load);

        // --- Pass 1: CBR flows ------------------------------------------
        // Skipped wholesale when no CBR flow is staged (every regional
        // recompute: the layered background pass keeps CBR flows out of
        // the adaptive region entirely).
        if *n_cbr > 0 {
            scale.clear();
            for l in 0..n_links {
                let cap = CBR_SHARE_LIMIT * caps[l];
                let req = cbr_requested[l];
                scale.push(if req > cap { cap / req } else { 1.0 });
            }
            for f in 0..n_flows {
                let r = flow_cbr[f];
                if r >= 0.0 {
                    let links = &flow_links[flow_off[f] as usize..flow_off[f + 1] as usize];
                    let k = links
                        .iter()
                        .map(|&l| scale[l as usize])
                        .fold(1.0f64, f64::min);
                    rates[f] = r * k;
                    for &l in links {
                        link_load[l as usize] += rates[f];
                    }
                }
            }
        }

        // --- Pass 2: adaptive flows (progressive filling) ---------------
        count.clear();
        count.resize(n_links, 0);
        frozen.clear();
        frozen.resize(n_flows, false);
        let mut n_unfrozen = 0usize;
        for f in 0..n_flows {
            if flow_cbr[f] < 0.0 && flow_off[f] != flow_off[f + 1] {
                n_unfrozen += 1;
                for &l in links_of(f) {
                    count[l as usize] += 1;
                }
            } else {
                // CBR flows and empty-path placeholders never enter the
                // filling rounds.
                frozen[f] = true;
            }
        }

        // One fused pass per link: residual, the CSR link→flow adjacency
        // offsets, and the cached equal-split share. Links carrying no
        // unfrozen flow hold `∞` so the dense round scans below skip them
        // without a separate liveness structure.
        residual.clear();
        adj_off.clear();
        adj_off.push(0);
        cursor.clear();
        share.clear();
        share.resize(n_links, f64::INFINITY);
        for l in 0..n_links {
            residual.push((caps[l] - link_load[l]).max(0.0));
            let c = count[l];
            adj_off.push(adj_off[l] + c);
            cursor.push(adj_off[l]);
            if c > 0 {
                share[l] = residual[l] / c as f64;
            }
        }
        adj.clear();
        adj.resize(adj_off[n_links] as usize, 0);
        for (f, &is_frozen) in frozen.iter().enumerate() {
            if !is_frozen {
                for &l in links_of(f) {
                    let c = &mut cursor[l as usize];
                    adj[*c as usize] = f as u32;
                    *c += 1;
                }
            }
        }

        while n_unfrozen > 0 {
            // Bottleneck share over links that still carry unfrozen flows.
            // Shares are cached and refreshed at freeze time (identical
            // `residual / count` inputs, so identical values; `∞` once the
            // link has no unfrozen flow left), so both scans are dense,
            // branch-free sweeps the compiler vectorizes.
            let mut min_share = f64::INFINITY;
            for &s in share.iter() {
                min_share = min_share.min(s);
            }
            debug_assert!(min_share.is_finite());
            // Same tie tolerance as the reference implementation.
            let eps = min_share * 1e-9 + 1e-6;
            let cutoff = min_share + eps;
            saturated.clear();
            for (l, &s) in share.iter().enumerate() {
                if s <= cutoff {
                    saturated.push(l as u32);
                }
            }
            // Freeze every flow crossing a saturated link, walking the
            // adjacency of those links only.
            let mut froze_any = false;
            for &l in saturated.iter() {
                for ai in adj_off[l as usize]..adj_off[l as usize + 1] {
                    let f = adj[ai as usize] as usize;
                    if frozen[f] {
                        continue;
                    }
                    frozen[f] = true;
                    froze_any = true;
                    n_unfrozen -= 1;
                    rates[f] = min_share;
                    for &l2 in &flow_links[flow_off[f] as usize..flow_off[f + 1] as usize] {
                        let l2 = l2 as usize;
                        residual[l2] = (residual[l2] - min_share).max(0.0);
                        count[l2] -= 1;
                        link_load[l2] += min_share;
                        share[l2] = if count[l2] > 0 {
                            residual[l2] / count[l2] as f64
                        } else {
                            f64::INFINITY
                        };
                    }
                }
            }
            // Progress guarantee: min_share came from a live link, and all
            // of that link's flows freeze when it saturates.
            assert!(froze_any, "progressive filling failed to make progress");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive(links: &[usize]) -> FlowPath<'_> {
        FlowPath {
            links,
            cbr_rate_bps: None,
        }
    }

    fn cbr(links: &[usize], rate: f64) -> FlowPath<'_> {
        FlowPath {
            links,
            cbr_rate_bps: Some(rate),
        }
    }

    #[test]
    fn single_link_equal_split() {
        let caps = [100.0];
        let l0 = [0usize];
        let flows = vec![adaptive(&l0), adaptive(&l0), adaptive(&l0), adaptive(&l0)];
        let a = max_min_fair(&caps, &flows);
        for r in &a.rates_bps {
            assert!((r - 25.0).abs() < 1e-6, "rate {r}");
        }
        assert!((a.link_load_bps[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn classic_two_bottleneck_example() {
        // Link 0: cap 10 shared by f0, f1. Link 1: cap 100 used by f1, f2.
        // Max-min: f0 = f1 = 5 on link 0; f2 gets the rest of link 1 = 95.
        let caps = [10.0, 100.0];
        let p0 = [0usize];
        let p1 = [0usize, 1usize];
        let p2 = [1usize];
        let flows = vec![adaptive(&p0), adaptive(&p1), adaptive(&p2)];
        let a = max_min_fair(&caps, &flows);
        assert!((a.rates_bps[0] - 5.0).abs() < 1e-6);
        assert!((a.rates_bps[1] - 5.0).abs() < 1e-6);
        assert!((a.rates_bps[2] - 95.0).abs() < 1e-6);
    }

    #[test]
    fn cbr_takes_priority() {
        // CBR at 60 on a 100-cap link leaves 40 for two TCP flows.
        let caps = [100.0];
        let l0 = [0usize];
        let flows = vec![cbr(&l0, 60.0), adaptive(&l0), adaptive(&l0)];
        let a = max_min_fair(&caps, &flows);
        assert!((a.rates_bps[0] - 60.0).abs() < 1e-6);
        assert!((a.rates_bps[1] - 20.0).abs() < 1e-6);
        assert!((a.rates_bps[2] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn cbr_overload_is_clamped_and_tcp_survives() {
        let caps = [100.0];
        let l0 = [0usize];
        let flows = vec![cbr(&l0, 500.0), adaptive(&l0)];
        let a = max_min_fair(&caps, &flows);
        assert!(a.rates_bps[0] <= CBR_SHARE_LIMIT * 100.0 + 1e-9);
        assert!(a.rates_bps[1] > 0.0, "TCP must keep a nonzero share");
        assert!(a.link_load_bps[0] <= 100.0 + 1e-6);
    }

    #[test]
    fn work_conserving_on_bottleneck() {
        // One adaptive flow alone on a path takes the bottleneck capacity.
        let caps = [100.0, 40.0, 100.0];
        let p = [0usize, 1, 2];
        let flows = vec![adaptive(&p)];
        let a = max_min_fair(&caps, &flows);
        assert!((a.rates_bps[0] - 40.0).abs() < 1e-6);
    }

    #[test]
    fn removal_anomaly_is_real() {
        // Max-min fairness is NOT monotone under flow removal: removing C
        // unthrottles A on link 1, and A then takes more of link 0 away
        // from B. (Property-based testing of the flow network surfaced
        // this; the counterexample is pinned here.)
        let caps = [10.0, 2.0];
        let p_a = [0usize, 1];
        let p_b = [0usize];
        let p_c = [1usize];
        // With C: A is frozen at 1 by link 1 (shared with C); B gets 9.
        let with_c = max_min_fair(&caps, &[adaptive(&p_a), adaptive(&p_b), adaptive(&p_c)]);
        assert!((with_c.rates_bps[0] - 1.0).abs() < 1e-6);
        assert!((with_c.rates_bps[1] - 9.0).abs() < 1e-6);
        // Without C: A rises to 2, B *drops* to 8.
        let without_c = max_min_fair(&caps, &[adaptive(&p_a), adaptive(&p_b)]);
        assert!((without_c.rates_bps[0] - 2.0).abs() < 1e-6);
        assert!((without_c.rates_bps[1] - 8.0).abs() < 1e-6);
        assert!(without_c.rates_bps[1] < with_c.rates_bps[1]);
    }

    #[test]
    fn empty_input() {
        let a = max_min_fair(&[10.0], &[]);
        assert!(a.rates_bps.is_empty());
        assert_eq!(a.link_load_bps, vec![0.0]);
    }

    /// Run the same problem through the reference and the workspace and
    /// require agreement to a tight relative tolerance.
    fn assert_ws_matches_reference(caps: &[f64], flows: &[FlowPath<'_>]) {
        let reference = max_min_fair(caps, flows);
        let mut ws = FairShareWorkspace::new();
        ws.begin(caps.len());
        let mut cbr_requested = vec![0.0f64; caps.len()];
        for f in flows {
            if let Some(r) = f.cbr_rate_bps {
                for &l in f.links {
                    cbr_requested[l] += r;
                }
            }
        }
        for (l, &cap) in caps.iter().enumerate() {
            ws.set_link(l, cap, cbr_requested[l]);
        }
        for f in flows {
            ws.add_flow(f.links.iter().map(|&l| l as u32), f.cbr_rate_bps);
        }
        ws.solve();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        for (i, &want) in reference.rates_bps.iter().enumerate() {
            let got = ws.rate_bps(i);
            assert!(close(got, want), "flow {i}: ws {got} vs reference {want}");
        }
        for (l, &want) in reference.link_load_bps.iter().enumerate() {
            let got = ws.link_load_bps(l);
            assert!(close(got, want), "link {l}: ws {got} vs reference {want}");
        }
    }

    #[test]
    fn workspace_matches_reference_on_pinned_cases() {
        let p0 = [0usize];
        let p1 = [0usize, 1];
        let p2 = [1usize];
        assert_ws_matches_reference(
            &[10.0, 100.0],
            &[adaptive(&p0), adaptive(&p1), adaptive(&p2)],
        );
        assert_ws_matches_reference(&[100.0], &[cbr(&p0, 60.0), adaptive(&p0), adaptive(&p0)]);
        assert_ws_matches_reference(&[100.0], &[cbr(&p0, 500.0), adaptive(&p0)]);
        let caps = [10.0, 2.0];
        let p_a = [0usize, 1];
        let p_b = [0usize];
        let p_c = [1usize];
        assert_ws_matches_reference(&caps, &[adaptive(&p_a), adaptive(&p_b), adaptive(&p_c)]);
        // Empty-path placeholder flows and zero-capacity links.
        let empty: [usize; 0] = [];
        assert_ws_matches_reference(
            &[0.0, 50.0],
            &[adaptive(&empty), adaptive(&p2), cbr(&p0, 5.0)],
        );
    }

    #[test]
    fn workspace_matches_reference_on_random_meshes() {
        // Small deterministic LCG; no external RNG needed here.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..50 {
            let n_links = 2 + next() % 8;
            let caps: Vec<f64> = (0..n_links).map(|_| (1 + next() % 1000) as f64).collect();
            let n_flows = 1 + next() % 12;
            let paths: Vec<Vec<usize>> = (0..n_flows)
                .map(|_| {
                    let len = 1 + next() % 3.min(n_links);
                    let mut links: Vec<usize> = Vec::new();
                    while links.len() < len {
                        let l = next() % n_links;
                        if !links.contains(&l) {
                            links.push(l);
                        }
                    }
                    links
                })
                .collect();
            let flows: Vec<FlowPath<'_>> = paths
                .iter()
                .enumerate()
                .map(|(i, p)| FlowPath {
                    links: p,
                    cbr_rate_bps: (i % 3 == 0).then(|| (1 + next() % 500) as f64),
                })
                .collect();
            assert_ws_matches_reference(&caps, &flows);
        }
    }

    #[test]
    fn workspace_is_reusable_across_solves() {
        let mut ws = FairShareWorkspace::new();
        for round in 0..3 {
            ws.begin(1);
            ws.set_link(0, 100.0, 0.0);
            for _ in 0..(round + 2) {
                ws.add_flow([0u32], None);
            }
            ws.solve();
            let want = 100.0 / (round + 2) as f64;
            for f in 0..ws.num_flows() {
                assert!((ws.rate_bps(f) - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn asymmetric_paths_share_fairly() {
        // Two disjoint links, one flow each, plus one flow crossing both.
        // cap = 30 each: crossing flow and each solo flow split both links:
        // share on each link = 15 — all three flows end at 15.
        let caps = [30.0, 30.0];
        let pa = [0usize];
        let pb = [1usize];
        let pab = [0usize, 1];
        let flows = vec![adaptive(&pa), adaptive(&pb), adaptive(&pab)];
        let a = max_min_fair(&caps, &flows);
        for r in &a.rates_bps {
            assert!((r - 15.0).abs() < 1e-6, "rate {r}");
        }
    }
}
