//! Flow descriptors.
//!
//! The simulator is *flow-level*: the unit of network activity is a flow
//! with a byte count and a path, not individual packets. TCP flows adapt
//! their rate (max-min fair share, computed in [`crate::fairshare`]); CBR
//! flows (the iperf UDP background traffic of the paper's evaluation) hold
//! a fixed rate regardless of congestion, exactly like unreactive UDP.

use std::fmt;

use crate::topology::NodeId;

/// Identifier of a flow inside a [`crate::net::FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Transport protocol, part of the classic 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protocol {
    /// Rate-adaptive transport.
    Tcp,
    /// Unreactive datagram transport.
    Udp,
}

/// The classic 5-tuple identifying an application flow. Addresses are node
/// ids — the simulator's stand-in for IP addresses (one address per host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FiveTuple {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FiveTuple {
    /// A TCP 5-tuple.
    pub fn tcp(src: NodeId, dst: NodeId, src_port: u16, dst_port: u16) -> Self {
        FiveTuple {
            src,
            dst,
            src_port,
            dst_port,
            proto: Protocol::Tcp,
        }
    }

    /// A UDP 5-tuple.
    pub fn udp(src: NodeId, dst: NodeId, src_port: u16, dst_port: u16) -> Self {
        FiveTuple {
            src,
            dst,
            src_port,
            dst_port,
            proto: Protocol::Udp,
        }
    }

    /// Canonical byte encoding used for hashing (ECMP) — field order is
    /// fixed and endianness explicit so hash values are platform-stable.
    pub fn to_bytes(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.src.0.to_be_bytes());
        out[4..8].copy_from_slice(&self.dst.0.to_be_bytes());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = match self.proto {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        };
        out
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = match self.proto {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
        };
        write!(
            f,
            "{p} {}:{} -> {}:{}",
            self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// How a flow consumes bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowKind {
    /// Rate-adaptive (TCP): receives a max-min fair share.
    Adaptive,
    /// Constant bit rate (unreactive UDP).
    Cbr {
        /// The requested constant rate, clamped only by link capacity.
        rate_bps: f64,
    },
}

/// Everything needed to start a flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// The flow's 5-tuple identity.
    pub tuple: FiveTuple,
    /// Total bytes to transfer; `None` for unbounded flows (background CBR
    /// runs until explicitly removed).
    pub size_bytes: Option<u64>,
    /// How the flow consumes bandwidth.
    pub kind: FlowKind,
}

impl FlowSpec {
    /// A size-bounded TCP transfer.
    pub fn tcp_transfer(tuple: FiveTuple, size_bytes: u64) -> Self {
        FlowSpec {
            tuple,
            size_bytes: Some(size_bytes),
            kind: FlowKind::Adaptive,
        }
    }

    /// An unbounded constant-bit-rate stream (iperf-style UDP).
    pub fn cbr(tuple: FiveTuple, rate_bps: f64) -> Self {
        assert!(rate_bps.is_finite() && rate_bps > 0.0);
        FlowSpec {
            tuple,
            size_bytes: None,
            kind: FlowKind::Cbr { rate_bps },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_bytes_are_stable_and_injective_enough() {
        let a = FiveTuple::tcp(NodeId(1), NodeId(2), 40000, 50060);
        let b = FiveTuple::tcp(NodeId(1), NodeId(2), 40001, 50060);
        let c = FiveTuple::udp(NodeId(1), NodeId(2), 40000, 50060);
        assert_eq!(a.to_bytes(), a.to_bytes());
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn display_formats() {
        let t = FiveTuple::tcp(NodeId(1), NodeId(2), 40000, 50060);
        assert_eq!(format!("{t}"), "tcp n1:40000 -> n2:50060");
    }

    #[test]
    #[should_panic]
    fn cbr_requires_positive_rate() {
        FlowSpec::cbr(FiveTuple::udp(NodeId(0), NodeId(1), 1, 2), 0.0);
    }
}
