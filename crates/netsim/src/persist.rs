//! [`Persist`] impls for the simulator's value types.
//!
//! [`Path`] is deliberately absent: rebuilding one requires the topology
//! (link ids must be validated against it), so paths are serialized as
//! raw link-id vectors and revalidated by [`crate::net::FlowNet`]'s
//! restore path.

use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};

use crate::flow::{FiveTuple, FlowId, FlowKind, FlowSpec, Protocol};
use crate::net::NetStats;
use crate::routing::Path;
use crate::topology::{LinkId, NodeId, Topology};

impl Persist for NodeId {
    fn put(&self, w: &mut SectionWriter) {
        self.0.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(NodeId(u32::get(r)?))
    }
}

impl Persist for LinkId {
    fn put(&self, w: &mut SectionWriter) {
        self.0.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(LinkId(u32::get(r)?))
    }
}

impl Persist for FlowId {
    fn put(&self, w: &mut SectionWriter) {
        self.0.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(FlowId(u64::get(r)?))
    }
}

impl Persist for Protocol {
    fn put(&self, w: &mut SectionWriter) {
        let tag: u8 = match self {
            Protocol::Tcp => 0,
            Protocol::Udp => 1,
        };
        tag.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        match u8::get(r)? {
            0 => Ok(Protocol::Tcp),
            1 => Ok(Protocol::Udp),
            t => Err(r.malformed(format!("unknown protocol tag {t}"))),
        }
    }
}

impl Persist for FiveTuple {
    fn put(&self, w: &mut SectionWriter) {
        self.src.put(w);
        self.dst.put(w);
        self.src_port.put(w);
        self.dst_port.put(w);
        self.proto.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(FiveTuple {
            src: NodeId::get(r)?,
            dst: NodeId::get(r)?,
            src_port: u16::get(r)?,
            dst_port: u16::get(r)?,
            proto: Protocol::get(r)?,
        })
    }
}

impl Persist for FlowKind {
    fn put(&self, w: &mut SectionWriter) {
        match self {
            FlowKind::Adaptive => 0u8.put(w),
            FlowKind::Cbr { rate_bps } => {
                1u8.put(w);
                rate_bps.put(w);
            }
        }
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        match u8::get(r)? {
            0 => Ok(FlowKind::Adaptive),
            1 => Ok(FlowKind::Cbr {
                rate_bps: f64::get(r)?,
            }),
            t => Err(r.malformed(format!("unknown flow kind tag {t}"))),
        }
    }
}

impl Persist for FlowSpec {
    fn put(&self, w: &mut SectionWriter) {
        self.tuple.put(w);
        self.size_bytes.put(w);
        self.kind.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(FlowSpec {
            tuple: FiveTuple::get(r)?,
            size_bytes: Option::<u64>::get(r)?,
            kind: FlowKind::get(r)?,
        })
    }
}

impl Persist for NetStats {
    fn put(&self, w: &mut SectionWriter) {
        self.recomputes.put(w);
        self.region_links.put(w);
        self.region_flows.put(w);
        self.advance_flow_steps.put(w);
        self.heap_pushes.put(w);
        self.heap_compactions.put(w);
        self.cbr_flow_updates.put(w);
        self.components.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(NetStats {
            recomputes: u64::get(r)?,
            region_links: u64::get(r)?,
            region_flows: u64::get(r)?,
            advance_flow_steps: u64::get(r)?,
            heap_pushes: u64::get(r)?,
            heap_compactions: u64::get(r)?,
            cbr_flow_updates: u64::get(r)?,
            components: u64::get(r)?,
        })
    }
}

/// Serialize a path as its raw link-id sequence.
pub fn put_path(w: &mut SectionWriter, path: &Path) {
    (path.links().len() as u64).put(w);
    for l in path.links() {
        l.0.put(w);
    }
}

/// Read a path serialized by [`put_path`], revalidating every link id
/// against `topo` and the path's continuity/loop-freedom invariants.
pub fn get_path(topo: &Topology, r: &mut SectionReader) -> Result<Path, SnapshotError> {
    let n = u64::get(r)? as usize;
    if n > topo.num_links() {
        return Err(r.malformed(format!("path of {n} hops exceeds topology link count")));
    }
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = u32::get(r)?;
        if raw as usize >= topo.num_links() {
            return Err(r.malformed(format!("path link id {raw} out of range")));
        }
        links.push(LinkId(raw));
    }
    Path::new(topo, links).map_err(|e| r.malformed(format!("invalid path: {e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_snapshot::{Reader, Writer};

    #[test]
    fn value_types_round_trip() {
        let spec = FlowSpec {
            tuple: FiveTuple::tcp(NodeId(3), NodeId(9), 40000, 50060),
            size_bytes: Some(1 << 30),
            kind: FlowKind::Adaptive,
        };
        let cbr = FlowSpec::cbr(FiveTuple::udp(NodeId(1), NodeId(2), 7, 8), 0.35e9);
        let stats = NetStats {
            recomputes: 1,
            region_links: 2,
            region_flows: 3,
            advance_flow_steps: 4,
            heap_pushes: 5,
            heap_compactions: 6,
            cbr_flow_updates: 7,
            components: 8,
        };
        let mut w = Writer::new();
        w.section("v", |s| {
            s.put(&spec);
            s.put(&cbr);
            s.put(&stats);
            s.put(&FlowId(42));
            s.put(&LinkId(17));
        });
        let bytes = w.finish();
        let mut s = Reader::new(&bytes).unwrap().section("v").unwrap();
        let spec2 = s.get::<FlowSpec>().unwrap();
        assert_eq!(spec2.tuple, spec.tuple);
        assert_eq!(spec2.size_bytes, spec.size_bytes);
        assert_eq!(spec2.kind, spec.kind);
        let cbr2 = s.get::<FlowSpec>().unwrap();
        assert_eq!(cbr2.kind, cbr.kind);
        assert_eq!(s.get::<NetStats>().unwrap(), stats);
        assert_eq!(s.get::<FlowId>().unwrap(), FlowId(42));
        assert_eq!(s.get::<LinkId>().unwrap(), LinkId(17));
        s.finish().unwrap();
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut w = Writer::new();
        w.section("v", |s| s.put(&7u8));
        let bytes = w.finish();
        let mut s = Reader::new(&bytes).unwrap().section("v").unwrap();
        let err = s.get::<Protocol>().unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }
}
