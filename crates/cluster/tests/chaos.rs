//! Chaos harness: deterministic fault schedules against the whole stack.
//!
//! The control plane must degrade, never fail: with a lossy, reordering
//! management network, a mid-shuffle controller outage, rule-install
//! faults and an agent restart replaying every spill, each job still
//! completes, byte accounting stays exact, and Pythia's job-completion
//! time stays bounded between the fault-free run and the ECMP baseline
//! of the same scenario. Everything is seeded: a chaos run is as
//! reproducible as a clean one.
//!
//! The property-based section drives randomized fault schedules; the
//! number of cases defaults low for CI and scales up via the
//! `CHAOS_CASES` environment variable.

use proptest::prelude::*;
use pythia_cluster::{run_scenario, ControllerOutage, RunReport, ScenarioConfig, SchedulerKind};
use pythia_core::MgmtNetConfig;
use pythia_des::SimDuration;
use pythia_hadoop::{DurationModel, JobSpec};
use pythia_workloads::SkewModel;

const MB: u64 = 1_000_000;

fn job(maps: usize, reducers: usize) -> JobSpec {
    JobSpec {
        name: "chaos".into(),
        num_maps: maps,
        num_reducers: reducers,
        input_bytes: maps as u64 * 64 * MB,
        map_output_ratio: 1.0,
        map_duration: DurationModel::rate(SimDuration::from_secs(1), 50.0 * MB as f64, 0.1),
        sort_duration: DurationModel::rate(SimDuration::from_millis(500), 500.0 * MB as f64, 0.1),
        reduce_duration: DurationModel::rate(SimDuration::from_millis(500), 200.0 * MB as f64, 0.1),
        partitioner: SkewModel::Zipf { s: 0.8 }.partitioner(reducers, 0.1, 99),
    }
}

/// The reference chaos schedule: ≤20% prediction loss with duplication
/// and reordering jitter, a controller crash in the middle of the
/// shuffle, occasional rule-install losses, and an agent restart that
/// replays every spill index after the controller recovers.
fn chaos_cfg(scheduler: SchedulerKind, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_scheduler(scheduler)
        .with_oversubscription(20)
        .with_seed(seed);
    cfg.pythia.mgmtnet = MgmtNetConfig {
        loss_prob: 0.2,
        dup_prob: 0.1,
        jitter: SimDuration::from_millis(20),
        retry_timeout: SimDuration::from_millis(50),
        max_retries: 4,
    };
    cfg.pythia.parked_ttl = Some(SimDuration::from_secs(60));
    cfg.controller.install_fail_prob = 0.1;
    cfg.controller_outages = vec![ControllerOutage {
        down_at: SimDuration::from_secs(3),
        up_at: SimDuration::from_secs(10),
    }];
    cfg.agent_respill_at = vec![SimDuration::from_secs(12)];
    cfg
}

fn run_chaos(scheduler: SchedulerKind, seed: u64) -> RunReport {
    run_scenario(job(40, 8), &chaos_cfg(scheduler, seed))
}

fn run_clean(scheduler: SchedulerKind, seed: u64) -> RunReport {
    let cfg = ScenarioConfig::default()
        .with_scheduler(scheduler)
        .with_oversubscription(20)
        .with_seed(seed);
    run_scenario(job(40, 8), &cfg)
}

/// Application-level byte conservation plus bounded wire overhead —
/// chaos must never lose or invent shuffle data.
fn assert_bytes_exact(r: &RunReport, maps: u64) {
    let job_bytes = maps * 64 * MB;
    let remote: u64 = r.timeline.reducers.values().map(|t| t.remote_bytes).sum();
    let local: u64 = r.timeline.reducers.values().map(|t| t.local_bytes).sum();
    assert_eq!(remote + local, job_bytes, "shuffle bytes lost or invented");
    let traced = r.flow_trace.total_bytes();
    assert!(traced > remote as f64, "wire bytes must exceed payload");
    assert!(traced < remote as f64 * 1.04, "overhead bounded");
}

#[test]
fn chaos_run_completes_with_exact_byte_accounting() {
    let r = run_chaos(SchedulerKind::Pythia, 42);
    assert!(r.timeline.job_end.is_some());
    assert_bytes_exact(&r, 40);
    // The shuffle volume matches the fault-free run bit for bit: chaos
    // touches only the control plane, never the data.
    let clean = run_clean(SchedulerKind::Pythia, 42);
    let remote =
        |r: &RunReport| -> u64 { r.timeline.reducers.values().map(|t| t.remote_bytes).sum() };
    assert_eq!(remote(&r), remote(&clean));
}

#[test]
fn chaos_degradation_counters_tell_the_story() {
    let r = run_chaos(SchedulerKind::Pythia, 42);
    let d = &r.degradation;
    assert!(!d.is_clean(), "a chaos run must not look clean");
    assert!(d.predictions_sent > 0);
    assert!(
        d.prediction_transmissions_lost > 0,
        "20% loss must drop transmissions: {d}"
    );
    assert!(
        d.predictions_deduped > 0,
        "the respill replay must be deduplicated: {d}"
    );
    assert_eq!(d.controller_outages, 1);
    assert_eq!(d.controller_down_secs, 7.0, "down from 3 s to 10 s");
    assert!(
        d.demands_deferred > 0,
        "placements during the outage must defer to ECMP: {d}"
    );
    assert!(
        d.rules_reinstalled > 0,
        "the restart resync must re-derive rules: {d}"
    );
    assert_eq!(d.predictions_malformed, 0);
}

#[test]
fn chaos_is_deterministic() {
    let a = run_chaos(SchedulerKind::Pythia, 7);
    let b = run_chaos(SchedulerKind::Pythia, 7);
    assert_eq!(a.completion(), b.completion());
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.rules_installed, b.rules_installed);
    assert_eq!(a.degradation, b.degradation);
    let c = run_chaos(SchedulerKind::Pythia, 8);
    assert_ne!(a.completion(), c.completion());
}

/// A checkpoint taken in the middle of the fault battery — lossy mgmt
/// net mid-retry, parked fetches, an outage scheduled or in flight —
/// must restore to a run indistinguishable from the uninterrupted one:
/// every DegradationReport counter and the MgmtNet retry state survive
/// the round trip. Pinned to the exact solver path so the assertion is
/// full equality in both feature states.
#[test]
fn chaos_survives_mid_run_checkpoint_restore() {
    use pythia_cluster::{capture_multi_snapshot, resume_multi_from_bytes};

    let cfg = chaos_cfg(SchedulerKind::Pythia, 7).with_relaxed_order(false);
    let jobs = || vec![(job(40, 8), SimDuration::ZERO)];

    let full = pythia_cluster::run_multi_scenario(jobs(), &cfg);
    let mid = full.events_processed / 2;
    let snap = capture_multi_snapshot(jobs(), &cfg, mid).expect("mid-chaos capture");
    let resumed = resume_multi_from_bytes(jobs(), &cfg, &snap).expect("mid-chaos resume");

    assert_eq!(full.events_processed, resumed.events_processed);
    assert_eq!(full.rules_installed, resumed.rules_installed);
    assert_eq!(full.makespan(), resumed.makespan());
    // Every fault counter — losses, retries exhausted, dedups, parked
    // expiries, outage bookkeeping — must match the uninterrupted run.
    assert_eq!(full.degradation, resumed.degradation);
    // And the run really was chaotic: the snapshot carried live retry
    // state, not a quiet simulation.
    assert!(resumed.degradation.prediction_transmissions_lost > 0);
    assert_eq!(resumed.degradation.controller_outages, 1);
}

#[test]
fn chaos_jct_bounded_between_clean_pythia_and_ecmp() {
    // Mean over seeds: individual runs vary with ECMP hash luck.
    let seeds = [1u64, 2, 3];
    let mean = |f: &dyn Fn(u64) -> RunReport| -> f64 {
        seeds
            .iter()
            .map(|&s| f(s).completion().as_secs_f64())
            .sum::<f64>()
            / seeds.len() as f64
    };
    let chaos = mean(&|s| run_chaos(SchedulerKind::Pythia, s));
    let clean = mean(&|s| run_clean(SchedulerKind::Pythia, s));
    let ecmp = mean(&|s| run_chaos(SchedulerKind::Ecmp, s));
    assert!(
        chaos <= ecmp,
        "graceful degradation must beat no scheduler at all: \
         chaos {chaos:.1}s vs ecmp {ecmp:.1}s"
    );
    assert!(
        chaos >= clean * 0.98,
        "chaos cannot beat the fault-free run: {chaos:.1}s vs {clean:.1}s"
    );
}

#[test]
fn zero_probability_knobs_change_nothing() {
    // All fault machinery configured but every probability zero: the run
    // must be bit-identical to the default fault-free path.
    let mut cfg = ScenarioConfig::default()
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(20)
        .with_seed(42);
    cfg.pythia.mgmtnet = MgmtNetConfig {
        loss_prob: 0.0,
        dup_prob: 0.0,
        jitter: SimDuration::ZERO,
        // A different retry timer is irrelevant on an ideal channel.
        retry_timeout: SimDuration::from_millis(77),
        max_retries: 9,
    };
    cfg.controller.install_fail_prob = 0.0;
    cfg.controller.install_timeout_prob = 0.0;
    let armed = run_scenario(job(40, 8), &cfg);
    let plain = run_clean(SchedulerKind::Pythia, 42);
    assert_eq!(armed.completion(), plain.completion());
    assert_eq!(armed.events_processed, plain.events_processed);
    assert_eq!(armed.rules_installed, plain.rules_installed);
    assert!(armed.degradation.is_clean(), "{}", armed.degradation);
}

#[test]
fn ecmp_baseline_ignores_control_plane_chaos() {
    // ECMP has no control plane to break: the chaos schedule must leave
    // it exactly as the clean run.
    let chaos = run_chaos(SchedulerKind::Ecmp, 42);
    let clean = run_clean(SchedulerKind::Ecmp, 42);
    assert_eq!(chaos.completion(), clean.completion());
    assert_eq!(chaos.rules_installed, 0);
}

/// Property section: randomized fault schedules. Case count defaults low
/// (CI smoke); export `CHAOS_CASES=256` for a long soak.
fn chaos_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn random_fault_schedules_never_wedge(
        seed in 1u64..10_000,
        loss in 0.0f64..0.3,
        dup in 0.0f64..0.2,
        jitter_ms in 0u64..50,
        fail_prob in 0.0f64..0.2,
        down_at_s in 2u64..12,
        down_len_s in 1u64..8,
        respill_s in 4u64..20,
    ) {
        let mut cfg = ScenarioConfig::default()
            .with_scheduler(SchedulerKind::Pythia)
            .with_oversubscription(10)
            .with_seed(seed);
        cfg.pythia.mgmtnet = MgmtNetConfig {
            loss_prob: loss,
            dup_prob: dup,
            jitter: SimDuration::from_millis(jitter_ms),
            ..Default::default()
        };
        cfg.pythia.parked_ttl = Some(SimDuration::from_secs(30));
        cfg.controller.install_fail_prob = fail_prob;
        cfg.controller_outages = vec![ControllerOutage {
            down_at: SimDuration::from_secs(down_at_s),
            up_at: SimDuration::from_secs(down_at_s + down_len_s),
        }];
        cfg.agent_respill_at = vec![SimDuration::from_secs(respill_s)];
        let r = run_scenario(job(16, 4), &cfg);
        prop_assert!(r.timeline.job_end.is_some());
        let job_bytes = 16 * 64 * MB;
        let remote: u64 = r.timeline.reducers.values().map(|t| t.remote_bytes).sum();
        let local: u64 = r.timeline.reducers.values().map(|t| t.local_bytes).sum();
        prop_assert_eq!(remote + local, job_bytes);
        prop_assert_eq!(r.degradation.controller_outages, 1);

        // Mid-run checkpoint+restore leg under the same randomized fault
        // schedule (exact solver pinned so the comparison is equality):
        // every degradation counter and the MgmtNet retry state must
        // survive the round trip — the resumed run is indistinguishable.
        let exact_cfg = cfg.with_relaxed_order(false);
        let jobs = || vec![(job(16, 4), SimDuration::ZERO)];
        let full = pythia_cluster::run_multi_scenario(jobs(), &exact_cfg);
        let snap = pythia_cluster::capture_multi_snapshot(
            jobs(), &exact_cfg, (full.events_processed / 2).max(1),
        ).unwrap();
        let resumed =
            pythia_cluster::resume_multi_from_bytes(jobs(), &exact_cfg, &snap).unwrap();
        prop_assert_eq!(full.events_processed, resumed.events_processed);
        prop_assert_eq!(full.makespan(), resumed.makespan());
        prop_assert_eq!(&full.degradation, &resumed.degradation);
    }
}
