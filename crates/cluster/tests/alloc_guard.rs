//! Allocation guards for the hot loops.
//!
//! A counting global allocator wraps `System` and the checks run against
//! its counter:
//!
//! 1. **Zero steady-state allocation** in the component hot loops: a
//!    warmed-up [`FlowNet`] advance → mutate → recompute cycle, a
//!    pre-sized NetFlow probe sampling cycle, and a warmed-up
//!    [`EventQueue`] push → cancel → pop cycle must perform exactly zero
//!    heap allocations.
//! 2. **Bounded allocations per event** for the full engine: a complete
//!    fat-tree run must stay under a per-event allocation budget, so an
//!    accidental O(all flows) collection creeping back into a dispatch
//!    handler fails loudly.
//!
//! Everything lives in one `#[test]` because the counter is process-wide
//! and the default test runner is multi-threaded.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pythia_cluster::{run_scenario, ScenarioConfig, SchedulerKind};
use pythia_des::{EventQueue, SimDuration, SimTime};
use pythia_hadoop::{DurationModel, JobSpec};
use pythia_netsim::{
    build_multi_rack, FatTreeParams, FiveTuple, FlowNet, FlowSpec, MultiRackParams, Path,
};
use pythia_workloads::SkewModel;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Drive one advance → mutate → recompute round on a warmed net.
fn net_cycle(net: &mut FlowNet, cbrs: &[pythia_netsim::FlowId], round: u64) {
    let t = net.now() + SimDuration::from_millis(10);
    let _completed = net.advance_to(t);
    for (i, &fid) in cbrs.iter().enumerate() {
        // Deterministic wobble; stays far from link capacity.
        let rate = 1e9 + ((round * 7 + i as u64 * 13) % 100) as f64 * 1e6;
        net.set_cbr_rate(fid, rate);
    }
    net.recompute();
}

fn queue_cycle(q: &mut EventQueue<u32>, base_ms: u64) {
    let mut ids = [None; 32];
    for (i, slot) in ids.iter_mut().enumerate() {
        *slot = Some(q.push(SimTime::from_millis(base_ms + i as u64), i as u32));
    }
    // Cancel the odd half (stale completion estimates), pop the rest.
    for id in ids.iter().flatten().skip(1).step_by(2) {
        q.cancel(*id);
    }
    while q.pop().is_some() {}
}

fn job(maps: usize, reducers: usize) -> JobSpec {
    const MB: u64 = 1_000_000;
    JobSpec {
        name: "alloc-guard".into(),
        num_maps: maps,
        num_reducers: reducers,
        input_bytes: maps as u64 * 64 * MB,
        map_output_ratio: 1.0,
        map_duration: DurationModel::rate(SimDuration::from_secs(1), 50.0 * MB as f64, 0.1),
        sort_duration: DurationModel::rate(SimDuration::from_millis(500), 500.0 * MB as f64, 0.1),
        reduce_duration: DurationModel::rate(SimDuration::from_millis(500), 200.0 * MB as f64, 0.1),
        partitioner: SkewModel::Zipf { s: 0.8 }.partitioner(reducers, 0.1, 99),
    }
}

// Debug builds run the allocating `assert_matches_reference` cross-check
// after every recompute, so the zero-allocation property only holds (and
// only matters) in release.
#[cfg_attr(
    debug_assertions,
    ignore = "reference cross-check allocates in debug builds"
)]
#[test]
fn hot_loops_allocation_budget() {
    // ---- 1a. FlowNet steady state: zero allocations. -------------------
    let mr = build_multi_rack(&MultiRackParams::default());
    let topo = &mr.topology;
    let mut net = FlowNet::new(topo.clone());
    // Background CBR on both trunks plus long-lived adaptive flows, so a
    // cycle exercises the layered CBR refresh, the adaptive region solve
    // and metered byte integration together.
    let mut cbrs = Vec::new();
    for trunk in 0..2 {
        let l = topo.find_link(mr.tors[0], mr.tors[1], trunk).unwrap();
        let tuple = FiveTuple::udp(mr.tors[0], mr.tors[1], 9000 + trunk as u16, 9);
        let path = Path::new(topo, vec![l]).unwrap();
        cbrs.push(net.start_flow(FlowSpec::cbr(tuple, 1e9), path));
    }
    for i in 0..4u16 {
        let s = mr.servers[i as usize];
        let d = mr.servers[5 + i as usize];
        let up = topo.find_link(s, mr.tors[0], 0).unwrap();
        let tr = topo
            .find_link(mr.tors[0], mr.tors[1], (i % 2) as usize)
            .unwrap();
        let down = topo.find_link(mr.tors[1], d, 0).unwrap();
        let path = Path::new(topo, vec![up, tr, down]).unwrap();
        // Big enough to outlive the whole measured window.
        net.start_flow(
            FlowSpec::tcp_transfer(FiveTuple::tcp(s, d, 40000 + i, 50060), 500_000_000_000),
            path,
        );
    }
    net.recompute();
    for round in 0..50 {
        net_cycle(&mut net, &cbrs, round); // warm every internal buffer
    }
    let before = allocs();
    for round in 50..150 {
        net_cycle(&mut net, &cbrs, round);
    }
    assert_eq!(
        allocs() - before,
        0,
        "FlowNet advance/mutate/recompute cycle allocated in steady state"
    );

    // ---- 1b. NetFlow probe steady state: zero allocations. -------------
    // Pre-sized curves (the engine reserves from the scenario's fetch
    // count at construction) must absorb periodic and per-completion
    // samples without ever growing.
    let mut probe = pythia_netsim::NetFlowProbe::new(mr.servers.clone());
    probe.reserve(256);
    for round in 150..160 {
        net_cycle(&mut net, &cbrs, round);
        probe.sample(&net);
    }
    let before = allocs();
    for round in 160..260 {
        net_cycle(&mut net, &cbrs, round);
        probe.sample(&net);
        for &s in &mr.servers[..4] {
            probe.sample_node(&net, s);
        }
    }
    assert_eq!(
        allocs() - before,
        0,
        "pre-sized NetFlowProbe sampling allocated in steady state"
    );

    // ---- 1c. EventQueue steady state: zero allocations. ----------------
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..200 {
        queue_cycle(&mut q, i * 100);
    }
    let before = allocs();
    for i in 200..400 {
        queue_cycle(&mut q, i * 100);
    }
    assert_eq!(
        allocs() - before,
        0,
        "EventQueue push/cancel/pop cycle allocated in steady state"
    );

    // ---- 2. Whole-engine allocation budget per event. ------------------
    // A full run still allocates for real state growth (new flows' paths,
    // curve points, trace records, rule installs), but the per-event
    // average must stay small and flat: an O(all flows) temporary per
    // dispatch would blow this budget immediately.
    let cfg = ScenarioConfig::default()
        .with_topology(FatTreeParams {
            k: 4,
            ..FatTreeParams::default()
        })
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(10)
        .with_seed(5);
    let before = allocs();
    let report = run_scenario(job(24, 6), &cfg);
    let spent = allocs() - before;
    let per_event = spent as f64 / report.events_processed as f64;
    assert!(
        per_event < 40.0,
        "engine allocated {per_event:.1} times per event ({spent} total / {} events)",
        report.events_processed
    );
}
