//! Crash-durable snapshot/resume: the whole simulation checkpoints,
//! resumes byte-identically (exact solver path), forks onto new chaos
//! schedules, and turns every corrupt snapshot into a typed error.
//!
//! The exact-path tests pin `with_relaxed_order(false)` so they assert
//! full report equality in both feature states; the relaxed leg pins
//! `true` and goes through the published tolerance instead.

use pythia_cluster::{
    capture_multi_snapshot, compare_tolerance, fork_multi_scenario, resume_multi_from_bytes,
    resume_multi_scenario, run_multi_scenario, run_multi_scenario_checkpointed, CheckpointPolicy,
    ControllerOutage, MultiRunReport, ScenarioConfig, SchedulerKind, SnapshotError,
};
use pythia_core::MgmtNetConfig;
use pythia_des::SimDuration;
use pythia_hadoop::{DurationModel, JobSpec};
use pythia_workloads::SkewModel;

const MB: u64 = 1_000_000;

fn job(maps: usize, reducers: usize) -> JobSpec {
    JobSpec {
        name: "snap".into(),
        num_maps: maps,
        num_reducers: reducers,
        input_bytes: maps as u64 * 64 * MB,
        map_output_ratio: 1.0,
        map_duration: DurationModel::rate(SimDuration::from_secs(1), 50.0 * MB as f64, 0.1),
        sort_duration: DurationModel::rate(SimDuration::from_millis(500), 500.0 * MB as f64, 0.1),
        reduce_duration: DurationModel::rate(SimDuration::from_millis(500), 200.0 * MB as f64, 0.1),
        partitioner: SkewModel::Zipf { s: 0.8 }.partitioner(reducers, 0.1, 99),
    }
}

fn jobs(maps: usize, reducers: usize) -> Vec<(JobSpec, SimDuration)> {
    vec![(job(maps, reducers), SimDuration::ZERO)]
}

/// Exact-path scenario with the full fault battery armed: lossy mgmt
/// net, a mid-shuffle controller outage and an agent respill, so the
/// snapshot has to carry retry state, parked fetches and chaos events.
fn chaosy_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(10)
        .with_seed(seed)
        .with_relaxed_order(false);
    cfg.pythia.mgmtnet = MgmtNetConfig {
        loss_prob: 0.2,
        dup_prob: 0.1,
        jitter: SimDuration::from_millis(20),
        retry_timeout: SimDuration::from_millis(50),
        max_retries: 4,
    };
    cfg.pythia.parked_ttl = Some(SimDuration::from_secs(60));
    cfg.controller.install_fail_prob = 0.1;
    cfg.controller_outages = vec![ControllerOutage {
        down_at: SimDuration::from_millis(4_070),
        up_at: SimDuration::from_millis(6_310),
    }];
    cfg.agent_respill_at = vec![SimDuration::from_millis(7_130)];
    cfg
}

fn clean_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig::default()
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(10)
        .with_seed(seed)
        .with_relaxed_order(false)
}

/// Full-report fingerprint: the `Debug` rendering covers every field —
/// timelines, flow traces, curves, degradation counters, event counts —
/// so two equal strings mean observably identical runs.
fn fp(r: &MultiRunReport) -> String {
    format!("{r:?}")
}

#[test]
fn exact_resume_reproduces_uninterrupted_run() {
    let cfg = chaosy_cfg(7);
    let full = run_multi_scenario(jobs(16, 4), &cfg);
    let mid = full.events_processed / 2;
    assert!(mid > 30, "scenario too small to be a meaningful fixture");

    // The mid-run capture goes through snapshot → restore → re-snapshot
    // in debug builds (the byte-identity cross-check inside the engine),
    // so taking it already exercises the resume-safety hole detector.
    let snap = capture_multi_snapshot(jobs(16, 4), &cfg, mid).expect("capture");
    let resumed = resume_multi_from_bytes(jobs(16, 4), &cfg, &snap).expect("resume");
    assert_eq!(
        fp(&full),
        fp(&resumed),
        "resumed run diverged from the uninterrupted one"
    );

    // Resuming the same bytes twice is deterministic.
    let again = resume_multi_from_bytes(jobs(16, 4), &cfg, &snap).expect("second resume");
    assert_eq!(fp(&resumed), fp(&again));

    // The fixture actually saw faults — the snapshot carried retry and
    // outage state, not a quiet simulation.
    let r = resumed.into_single();
    assert_eq!(r.degradation.controller_outages, 1);
    assert!(r.degradation.predictions_sent > 0);
}

#[test]
fn checkpointed_run_matches_plain_and_resumes_from_disk() {
    let cfg = chaosy_cfg(11);
    let dir = std::env::temp_dir().join(format!("pythia-snap-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let plain = run_multi_scenario(jobs(16, 4), &cfg);
    let policy = CheckpointPolicy::new(&dir).every_events(50);
    let checkpointed =
        run_multi_scenario_checkpointed(jobs(16, 4), &cfg, &policy).expect("checkpointed run");
    assert_eq!(
        fp(&plain),
        fp(&checkpointed),
        "periodic checkpointing perturbed the exact-path run"
    );

    // Superseded snapshots are pruned: one .pysnap plus the MANIFEST.
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.iter().filter(|n| n.ends_with(".pysnap")).count(), 1);
    assert!(names.iter().any(|n| n == "MANIFEST"), "names: {names:?}");

    // Pick the last checkpoint back up — kill -9 after the final write
    // would leave exactly this state — and run the tail to completion.
    let resumed = resume_multi_scenario(jobs(16, 4), &cfg, &dir, None).expect("resume from disk");
    assert_eq!(fp(&plain), fp(&resumed));

    // A different scenario must be refused, not silently diverge.
    let other = chaosy_cfg(12);
    match resume_multi_scenario(jobs(16, 4), &other, &dir, None) {
        Err(SnapshotError::ConfigMismatch { expected, found }) => assert_ne!(expected, found),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_fail_typed_never_panic() {
    let cfg = chaosy_cfg(3);
    let full = run_multi_scenario(jobs(8, 4), &cfg);
    let snap =
        capture_multi_snapshot(jobs(8, 4), &cfg, full.events_processed / 2).expect("capture");

    // Header corruption has precise diagnoses.
    let mut bad_magic = snap.clone();
    bad_magic[0] ^= 0xff;
    match resume_multi_from_bytes(jobs(8, 4), &cfg, &bad_magic) {
        Err(SnapshotError::BadMagic) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    let mut bad_version = snap.clone();
    bad_version[4..8].copy_from_slice(&999u32.to_le_bytes());
    match resume_multi_from_bytes(jobs(8, 4), &cfg, &bad_version) {
        Err(SnapshotError::Version { found: 999, .. }) => {}
        other => panic!("expected Version mismatch, got {other:?}"),
    }

    // Truncation anywhere is a typed error.
    for cut in [0, 1, 7, snap.len() / 3, snap.len() - 1] {
        let r = resume_multi_from_bytes(jobs(8, 4), &cfg, &snap[..cut]);
        assert!(r.is_err(), "truncation to {cut} bytes was accepted");
    }

    // Bit-flip fuzz across the whole snapshot: every flip must surface
    // as an Err — never a panic, never a silently wrong resume. The
    // per-section CRC32 catches all single-bit body flips; header flips
    // land in the framing diagnoses.
    let step = (snap.len() / 96).max(1);
    for pos in (0..snap.len()).step_by(step) {
        let mut bad = snap.clone();
        bad[pos] ^= 1 << (pos % 8);
        let r = resume_multi_from_bytes(jobs(8, 4), &cfg, &bad);
        assert!(r.is_err(), "bit flip at byte {pos} was accepted");
    }
}

#[test]
fn fork_reproduces_cold_start_chaos_run() {
    // Warm up with no chaos scheduled, snapshot early, then fork the
    // warm-up onto a chaos schedule. The fork must be observably
    // identical to a cold start that had the same schedule from t=0.
    let base = clean_cfg(21);
    let warm = capture_multi_snapshot(jobs(16, 4), &base, 40).expect("warm-up capture");

    let mut chaos = base.clone();
    chaos.controller_outages = vec![ControllerOutage {
        down_at: SimDuration::from_millis(5_330),
        up_at: SimDuration::from_millis(7_810),
    }];
    chaos.agent_respill_at = vec![SimDuration::from_millis(8_130)];

    let cold = run_multi_scenario(jobs(16, 4), &chaos);
    let forked = fork_multi_scenario(jobs(16, 4), &chaos, &warm).expect("fork");
    assert_eq!(
        fp(&cold),
        fp(&forked),
        "forked chaos run diverged from the cold start"
    );
    assert_eq!(forked.into_single().degradation.controller_outages, 1);

    // Chaos scheduled at-or-before the fork point is refused.
    let mut too_early = base.clone();
    too_early.controller_outages = vec![ControllerOutage {
        down_at: SimDuration::from_millis(1),
        up_at: SimDuration::from_millis(2),
    }];
    match fork_multi_scenario(jobs(16, 4), &too_early, &warm) {
        Err(SnapshotError::Fork { detail }) => {
            assert!(detail.contains("fork point"), "detail: {detail}")
        }
        other => panic!("expected Fork error, got {other:?}"),
    }
}

#[test]
fn relaxed_resume_stays_within_tolerance() {
    let exact = run_multi_scenario(jobs(16, 4), &clean_cfg(5)).into_single();

    let relaxed_cfg = clean_cfg(5).with_relaxed_order(true);
    let full = run_multi_scenario(jobs(16, 4), &relaxed_cfg);
    let snap = capture_multi_snapshot(jobs(16, 4), &relaxed_cfg, full.events_processed / 2)
        .expect("relaxed capture");
    let resumed = resume_multi_from_bytes(jobs(16, 4), &relaxed_cfg, &snap)
        .expect("relaxed resume")
        .into_single();

    let t = compare_tolerance(&exact, &resumed);
    assert!(
        t.within_bounds(),
        "relaxed resumed run left tolerance: {}\n{:#?}",
        t.summary(),
        t.violations
    );
}
