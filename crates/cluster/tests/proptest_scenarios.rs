//! Property tests over randomized end-to-end scenarios: every
//! configuration completes, conserves bytes across the Hadoop/network
//! boundary, and is bit-deterministic.

use proptest::prelude::*;
use pythia_cluster::{run_scenario, ScenarioConfig, SchedulerKind};
use pythia_des::SimDuration;
use pythia_hadoop::{DurationModel, HadoopConfig, JobSpec};
use pythia_netsim::{BackgroundProfile, MultiRackParams};
use pythia_workloads::SkewModel;

const MB: u64 = 1_000_000;

#[derive(Debug, Clone)]
struct Scn {
    scheduler: SchedulerKind,
    ratio: u32,
    racks: u32,
    servers_per_rack: u32,
    maps: usize,
    reducers: usize,
    mb_per_map: u64,
    zipf_s: f64,
    fluctuating: bool,
    seed: u64,
}

fn scn() -> impl Strategy<Value = Scn> {
    (
        prop_oneof![
            Just(SchedulerKind::Ecmp),
            Just(SchedulerKind::Pythia),
            Just(SchedulerKind::Hedera),
        ],
        prop_oneof![Just(1u32), Just(5), Just(10), Just(20)],
        2u32..4,
        2u32..5,
        2usize..25,
        1usize..6,
        4u64..128,
        0.0f64..1.5,
        any::<bool>(),
        1u64..10_000,
    )
        .prop_map(
            |(scheduler, ratio, racks, spr, maps, reducers, mb, zipf_s, fluctuating, seed)| Scn {
                scheduler,
                ratio,
                racks,
                servers_per_rack: spr,
                maps,
                reducers: reducers.min((spr * racks) as usize * 2),
                mb_per_map: mb,
                zipf_s,
                fluctuating,
                seed,
            },
        )
}

fn build(s: &Scn) -> (JobSpec, ScenarioConfig) {
    let job = JobSpec {
        name: "prop".into(),
        num_maps: s.maps,
        num_reducers: s.reducers,
        input_bytes: s.maps as u64 * s.mb_per_map * MB,
        map_output_ratio: 1.0,
        map_duration: DurationModel::rate(SimDuration::from_millis(500), 50.0 * MB as f64, 0.2),
        sort_duration: DurationModel::rate(SimDuration::from_millis(100), 500.0 * MB as f64, 0.1),
        reduce_duration: DurationModel::rate(SimDuration::from_millis(100), 200.0 * MB as f64, 0.1),
        partitioner: SkewModel::Zipf { s: s.zipf_s }.partitioner(s.reducers, 0.1, s.seed),
    };
    let mut cfg = ScenarioConfig::default()
        .with_scheduler(s.scheduler)
        .with_oversubscription(s.ratio)
        .with_seed(s.seed);
    cfg.topology = MultiRackParams {
        racks: s.racks,
        servers_per_rack: s.servers_per_rack,
        nic_bps: 1e9,
        trunk_count: 2,
        trunk_bps: 10e9,
    }
    .into();
    cfg.hadoop = HadoopConfig {
        map_slots_per_server: 2,
        reduce_slots_per_server: 2,
        reducer_launch_overhead: SimDuration::from_millis(500),
        ..Default::default()
    };
    cfg.background = if s.fluctuating {
        BackgroundProfile::default()
    } else {
        BackgroundProfile::Static
    };
    (job, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random scenario completes with conserved bytes.
    #[test]
    fn completes_and_conserves(s in scn()) {
        let (job, cfg) = build(&s);
        let expected_output = {
            let split = (job.input_bytes as f64 / job.num_maps as f64).round() as u64;
            split * job.num_maps as u64
        };
        let r = run_scenario(job, &cfg);
        prop_assert!(r.timeline.job_end.is_some());
        let local: u64 = r.timeline.reducers.values().map(|t| t.local_bytes).sum();
        let remote: u64 = r.timeline.reducers.values().map(|t| t.remote_bytes).sum();
        prop_assert_eq!(local + remote, expected_output);
        // Wire trace covers remote payload plus bounded overhead.
        let traced = r.flow_trace.total_bytes();
        prop_assert!(traced >= remote as f64 * 0.999);
        prop_assert!(traced <= remote as f64 * 1.04 + 1.0);
        // Only Pythia programs the network.
        if s.scheduler != SchedulerKind::Pythia {
            prop_assert_eq!(r.rules_installed, 0);
        }
    }

    /// Bit-determinism across the whole stack.
    #[test]
    fn deterministic(s in scn()) {
        let (job_a, cfg) = build(&s);
        let (job_b, _) = build(&s);
        let a = run_scenario(job_a, &cfg);
        let b = run_scenario(job_b, &cfg);
        prop_assert_eq!(a.completion(), b.completion());
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.rules_installed, b.rules_installed);
        prop_assert_eq!(a.flow_trace.len(), b.flow_trace.len());
    }
}
