//! Flight-recorder integration: a traced run must yield a coherent,
//! schema-valid event stream covering the whole prediction→rule→flow
//! chain, without perturbing the simulation itself.

use pythia_cluster::{run_scenario, LinkFault, RunReport, ScenarioConfig, SchedulerKind};
use pythia_core::MgmtNetConfig;
use pythia_des::SimDuration;
use pythia_hadoop::{DurationModel, JobSpec};
use pythia_metrics::LeadTimeReport;
use pythia_trace::{export, Component, TraceConfig};
use pythia_workloads::SkewModel;

const MB: u64 = 1_000_000;

fn job(maps: usize, reducers: usize) -> JobSpec {
    JobSpec {
        name: "traced".into(),
        num_maps: maps,
        num_reducers: reducers,
        input_bytes: maps as u64 * 64 * MB,
        map_output_ratio: 1.0,
        map_duration: DurationModel::rate(SimDuration::from_secs(1), 50.0 * MB as f64, 0.1),
        sort_duration: DurationModel::rate(SimDuration::from_millis(500), 500.0 * MB as f64, 0.1),
        reduce_duration: DurationModel::rate(SimDuration::from_millis(500), 200.0 * MB as f64, 0.1),
        partitioner: SkewModel::Zipf { s: 0.8 }.partitioner(reducers, 0.1, 99),
    }
}

fn traced_cfg(trace: TraceConfig) -> ScenarioConfig {
    ScenarioConfig::default()
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(10)
        .with_seed(42)
        .with_trace(trace)
}

fn run_traced(trace: TraceConfig) -> RunReport {
    run_scenario(job(40, 8), &traced_cfg(trace))
}

#[test]
fn traced_run_records_the_full_pipeline_chain() {
    let r = run_traced(TraceConfig::enabled());
    assert!(r.timeline.job_end.is_some());
    assert!(!r.trace_events.is_empty());
    let has = |name: &str| r.trace_events.iter().any(|te| te.event.name() == name);
    for stage in [
        "map_finish",
        "spill_decode",
        "prediction_emit",
        "prediction_wire",
        "collector_aggregate",
        "alloc_place",
        "rule_issue",
        "rule_active",
        "flow_start",
        "flow_finish",
    ] {
        assert!(has(stage), "traced run must record {stage}");
    }
    // Timestamps and sequence numbers are monotone.
    for w in r.trace_events.windows(2) {
        assert!(w[0].t <= w[1].t);
        assert!(w[0].seq < w[1].seq);
    }
    // Span histograms registered for the control-plane hot spots.
    assert!(r.trace_stats.span("path_compute").is_some());
    assert!(r.trace_stats.span("first_fit_place").is_some());
    assert_eq!(r.trace_stats.events_dropped, 0);
}

#[test]
fn exports_validate_and_feed_the_leadtime_report() {
    let r = run_traced(TraceConfig::enabled());
    let jsonl = export::to_jsonl(&r.trace_events);
    let n = export::validate_jsonl(&jsonl).expect("JSONL must match schema");
    assert_eq!(n, r.trace_events.len());
    let chrome = export::to_chrome_trace(&r.trace_events);
    assert!(chrome.contains("\"traceEvents\""));
    // The Fig-5 latency budget: every pair's full demand must be known
    // before its traffic finishes materializing.
    let lt = LeadTimeReport::from_events(&r.trace_events);
    assert!(!lt.pairs.is_empty());
    let min = lt.min_lead().expect("pairs with traffic must exist");
    assert!(
        min > SimDuration::ZERO,
        "prediction must lead traffic, got {min}"
    );
    assert!(lt.mean_lead().unwrap() >= min);
    assert!(lt.completed_pairs().all(|p| p.predict_to_place().is_some()));
    let table = lt.render_table();
    assert!(table.contains("lead over"), "{table}");
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let traced = run_traced(TraceConfig::enabled());
    let plain = run_traced(TraceConfig::disabled());
    assert_eq!(traced.completion(), plain.completion());
    assert_eq!(traced.events_processed, plain.events_processed);
    assert_eq!(traced.rules_installed, plain.rules_installed);
    assert!(plain.trace_events.is_empty());
    assert_eq!(plain.trace_stats.events_recorded, 0);
}

#[test]
fn bounded_capacity_keeps_memory_bounded() {
    let r = run_traced(TraceConfig::bounded(100));
    assert!(r.trace_events.len() <= 100);
    assert!(
        r.trace_stats.events_dropped > 0,
        "a full run must overflow a 100-event ring"
    );
    // The survivors are the newest events.
    assert_eq!(
        r.trace_events.last().unwrap().seq + 1,
        r.trace_stats.events_recorded
    );
}

#[test]
fn component_filter_restricts_the_stream() {
    let r = run_traced(TraceConfig::enabled().with_components(&[Component::NetSim]));
    assert!(!r.trace_events.is_empty());
    assert!(r
        .trace_events
        .iter()
        .all(|te| te.event.component() == Component::NetSim));
    assert!(r.trace_stats.events_filtered > 0);
}

#[test]
fn all_trunks_down_parks_fetches_until_recovery() {
    // Every trunk cable dies before the shuffle and stays down long
    // enough that fetches must start while the racks are partitioned.
    // The run must park them (not panic) and finish after recovery.
    let mut cfg = traced_cfg(TraceConfig::enabled());
    cfg.link_faults = vec![
        LinkFault {
            trunk_cable: 0,
            fail_at: SimDuration::from_secs(1),
            restore_at: Some(SimDuration::from_secs(60)),
        },
        LinkFault {
            trunk_cable: 1,
            fail_at: SimDuration::from_secs(1),
            restore_at: Some(SimDuration::from_secs(60)),
        },
    ];
    let r = run_scenario(job(16, 4), &cfg);
    assert!(r.timeline.job_end.is_some(), "partitioned run must finish");
    assert!(r.completion() >= SimDuration::from_secs(60));
    let d = &r.degradation;
    assert!(
        d.flows_unroutable > 0,
        "fetches during the partition must park: {d}"
    );
    assert!(
        d.demands_no_path > 0,
        "placements during the partition must find no path: {d}"
    );
    assert!(r
        .trace_events
        .iter()
        .any(|te| te.event.name() == "flow_unroutable"));
    assert!(r
        .trace_events
        .iter()
        .any(|te| te.event.name() == "link_state"));
}

#[test]
fn total_mgmtnet_loss_still_completes_without_predictions() {
    // 100% management-network loss: no prediction ever reaches the
    // collector, prediction curves stay empty, and evaluation yields
    // None instead of a panic — the job itself rides default ECMP.
    let mut cfg = traced_cfg(TraceConfig::enabled());
    cfg.pythia.mgmtnet = MgmtNetConfig {
        loss_prob: 1.0,
        max_retries: 2,
        ..Default::default()
    };
    let r = run_scenario(job(16, 4), &cfg);
    assert!(r.timeline.job_end.is_some());
    let d = &r.degradation;
    assert!(d.predictions_sent > 0);
    assert_eq!(d.predictions_delivered, 0, "{d}");
    assert_eq!(d.predictions_lost, d.predictions_sent, "{d}");
    assert_eq!(r.rules_installed, 0, "no predictions, no rules");
    for (node, measured) in &r.measured_curves {
        let predicted = r.predicted_curves.get(node);
        assert!(
            predicted.is_none_or(|p| p.is_empty()),
            "no prediction may survive total loss on {node}"
        );
        if let Some(p) = predicted {
            assert!(pythia_metrics::evaluate_prediction(p, measured, 10).is_none());
        }
    }
}
