//! End-to-end engine tests: small jobs through the full stack
//! (Hadoop × flow network × SDN control × scheduler).

use pythia_cluster::{run_scenario, RunReport, ScenarioConfig, SchedulerKind};
use pythia_des::SimDuration;
use pythia_hadoop::{DurationModel, HadoopConfig, JobSpec};
use pythia_workloads::SkewModel;

const MB: u64 = 1_000_000;

fn small_job(maps: usize, reducers: usize, bytes_per_map: u64, skew: SkewModel) -> JobSpec {
    JobSpec {
        name: "smoke".into(),
        num_maps: maps,
        num_reducers: reducers,
        input_bytes: maps as u64 * bytes_per_map,
        map_output_ratio: 1.0,
        map_duration: DurationModel::rate(SimDuration::from_secs(1), 50.0 * MB as f64, 0.1),
        sort_duration: DurationModel::rate(SimDuration::from_millis(500), 500.0 * MB as f64, 0.1),
        reduce_duration: DurationModel::rate(SimDuration::from_millis(500), 200.0 * MB as f64, 0.1),
        partitioner: skew.partitioner(reducers, 0.1, 99),
    }
}

fn base_cfg() -> ScenarioConfig {
    ScenarioConfig {
        hadoop: HadoopConfig {
            map_slots_per_server: 2,
            reduce_slots_per_server: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn run(scheduler: SchedulerKind, ratio: u32, seed: u64) -> RunReport {
    let job = small_job(40, 8, 64 * MB, SkewModel::Zipf { s: 0.8 });
    let cfg = base_cfg()
        .with_scheduler(scheduler)
        .with_oversubscription(ratio)
        .with_seed(seed);
    run_scenario(job, &cfg)
}

#[test]
fn ecmp_job_completes() {
    let r = run(SchedulerKind::Ecmp, 1, 1);
    assert!(r.timeline.job_end.is_some());
    assert!(r.completion() > SimDuration::from_secs(1));
    assert!(!r.flow_trace.is_empty(), "cross-rack fetches must exist");
    assert_eq!(r.rules_installed, 0, "ECMP installs no rules");
    assert!(r.predicted_curves.is_empty());
}

#[test]
fn pythia_job_completes_and_installs_rules() {
    let r = run(SchedulerKind::Pythia, 10, 1);
    assert!(r.timeline.job_end.is_some());
    assert!(r.rules_installed > 0, "Pythia must program the network");
    assert!(
        !r.predicted_curves.is_empty(),
        "predictions must be recorded"
    );
    assert!(r.spills_per_server.iter().sum::<u64>() > 0);
}

#[test]
fn hedera_job_completes() {
    let r = run(SchedulerKind::Hedera, 10, 1);
    assert!(r.timeline.job_end.is_some());
    assert_eq!(r.rules_installed, 0);
}

#[test]
fn deterministic_same_seed() {
    let a = run(SchedulerKind::Pythia, 10, 42);
    let b = run(SchedulerKind::Pythia, 10, 42);
    assert_eq!(a.completion(), b.completion());
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.rules_installed, b.rules_installed);
    assert_eq!(a.flow_trace.len(), b.flow_trace.len());
}

#[test]
fn different_seeds_differ() {
    let a = run(SchedulerKind::Ecmp, 10, 1);
    let b = run(SchedulerKind::Ecmp, 10, 2);
    assert_ne!(a.completion(), b.completion());
}

#[test]
fn byte_conservation_across_stack() {
    let r = run(SchedulerKind::Ecmp, 1, 3);
    // All intermediate output lands at reducers: remote (traced on the
    // network, with wire overhead) + local.
    let job_bytes = 40 * 64 * MB;
    let remote: u64 = r.timeline.reducers.values().map(|t| t.remote_bytes).sum();
    let local: u64 = r.timeline.reducers.values().map(|t| t.local_bytes).sum();
    assert_eq!(remote + local, job_bytes, "application-level conservation");
    // Network trace carries remote bytes + 0.5–3.5% overhead.
    let traced = r.flow_trace.total_bytes();
    assert!(traced > remote as f64, "wire bytes must exceed payload");
    assert!(traced < remote as f64 * 1.04, "overhead bounded");
}

#[test]
fn oversubscription_slows_ecmp_down() {
    let fast = run(SchedulerKind::Ecmp, 1, 5);
    let slow = run(SchedulerKind::Ecmp, 20, 5);
    assert!(
        slow.completion() > fast.completion(),
        "1:20 must be slower than 1:1 ({} vs {})",
        slow.completion(),
        fast.completion()
    );
}

#[test]
fn pythia_beats_ecmp_under_heavy_oversubscription() {
    // Average over a few seeds: ECMP's hash luck varies.
    let seeds = [1u64, 2, 3];
    let mean = |kind: SchedulerKind| -> f64 {
        seeds
            .iter()
            .map(|&s| run(kind, 20, s).completion().as_secs_f64())
            .sum::<f64>()
            / seeds.len() as f64
    };
    let ecmp = mean(SchedulerKind::Ecmp);
    let pythia = mean(SchedulerKind::Pythia);
    assert!(
        pythia < ecmp,
        "Pythia ({pythia:.1}s) must beat ECMP ({ecmp:.1}s) at 1:20"
    );
}

#[test]
fn prediction_leads_measurement() {
    let r = run(SchedulerKind::Pythia, 5, 7);
    let mut evaluated = 0;
    for (node, measured) in &r.measured_curves {
        if measured.total() <= 0.0 {
            continue;
        }
        let Some(predicted) = r.predicted_curves.get(node) else {
            continue;
        };
        let eval = pythia_metrics::evaluate_prediction(predicted, measured, 10).unwrap();
        assert!(eval.never_lags, "prediction lagged on {node}");
        assert!(
            eval.overestimate_frac > 0.0,
            "prediction must over-estimate, got {}",
            eval.overestimate_frac
        );
        assert!(
            eval.min_lead > SimDuration::ZERO,
            "prediction must lead on {node}"
        );
        evaluated += 1;
    }
    assert!(evaluated >= 5, "most servers must source traffic");
}
