//! Pins the optimized engine to the pre-index behavior, bit for bit.
//!
//! The secondary indexes (server-pair → flows, link → flows), the layered
//! CBR background solve, metered byte integration, and the reusable
//! dispatch scratch buffers are all *pure caches*: they must not change a
//! single event, rate, curve point, or trace record. These fingerprints
//! were captured from the pre-optimization engine on the chaos harness
//! scenarios (controller outage + lossy management network + agent
//! respill) and on a clean fat-tree run; the optimized engine must
//! reproduce them exactly — including the full flight-recorder event
//! stream and every report artifact that feeds the CSVs.
//!
//! Every scenario pins `.with_relaxed_order(false)`: these fingerprints
//! define the exact accounting path, which must stay byte-identical no
//! matter which solver the `relaxed-order` cargo feature selects by
//! default. The relaxed solver is held to the tolerance bounds in
//! `tests/relaxed_tolerance.rs` at the workspace root instead.

use pythia_cluster::{run_scenario, ControllerOutage, RunReport, ScenarioConfig, SchedulerKind};
use pythia_core::MgmtNetConfig;
use pythia_des::SimDuration;
use pythia_hadoop::{DurationModel, JobSpec};
use pythia_netsim::FatTreeParams;
use pythia_trace::TraceConfig;
use pythia_workloads::SkewModel;

const MB: u64 = 1_000_000;

fn job(maps: usize, reducers: usize) -> JobSpec {
    JobSpec {
        name: "equiv".into(),
        num_maps: maps,
        num_reducers: reducers,
        input_bytes: maps as u64 * 64 * MB,
        map_output_ratio: 1.0,
        map_duration: DurationModel::rate(SimDuration::from_secs(1), 50.0 * MB as f64, 0.1),
        sort_duration: DurationModel::rate(SimDuration::from_millis(500), 500.0 * MB as f64, 0.1),
        reduce_duration: DurationModel::rate(SimDuration::from_millis(500), 200.0 * MB as f64, 0.1),
        partitioner: SkewModel::Zipf { s: 0.8 }.partitioner(reducers, 0.1, 99),
    }
}

/// The chaos harness's reference fault schedule (see `chaos.rs`), with the
/// flight recorder on so the trace event stream is part of the pin.
fn chaos_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(20)
        .with_seed(seed)
        .with_trace(TraceConfig::enabled())
        .with_relaxed_order(false);
    cfg.pythia.mgmtnet = MgmtNetConfig {
        loss_prob: 0.2,
        dup_prob: 0.1,
        jitter: SimDuration::from_millis(20),
        retry_timeout: SimDuration::from_millis(50),
        max_retries: 4,
    };
    cfg.pythia.parked_ttl = Some(SimDuration::from_secs(60));
    cfg.controller.install_fail_prob = 0.1;
    cfg.controller_outages = vec![ControllerOutage {
        down_at: SimDuration::from_secs(3),
        up_at: SimDuration::from_secs(10),
    }];
    cfg.agent_respill_at = vec![SimDuration::from_secs(12)];
    cfg
}

/// FNV-1a over a string: a stable, dependency-free content hash.
fn fnv(h: &mut u64, s: &str) {
    for b in s.bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Everything observable about a run, collapsed to one comparable line:
/// headline numbers plus content hashes of the trace stream, the per-flow
/// NetFlow records, the measured/predicted curves, and the timeline.
fn fingerprint(r: &RunReport) -> String {
    let mut trace = 0xcbf29ce484222325u64;
    for ev in &r.trace_events {
        fnv(&mut trace, &format!("{ev:?}"));
    }
    let mut artifacts = 0xcbf29ce484222325u64;
    fnv(&mut artifacts, &format!("{:?}", r.flow_trace));
    fnv(&mut artifacts, &format!("{:?}", r.measured_curves));
    fnv(&mut artifacts, &format!("{:?}", r.predicted_curves));
    fnv(&mut artifacts, &format!("{:?}", r.spills_per_server));
    fnv(&mut artifacts, &format!("{:?}", r.timeline));
    format!(
        "t={} ev={} rules={} flows={} outages={} tr={}#{trace:016x} art={artifacts:016x}",
        r.completion(),
        r.events_processed,
        r.rules_installed,
        r.flow_trace.len(),
        r.degradation.controller_outages,
        r.trace_events.len(),
    )
}

#[test]
fn chaos_seed_runs_match_pre_index_engine() {
    let expected = [
        (
            42u64,
            "t=24.002518s ev=615 rules=95 flows=288 outages=1 tr=1301#b00276ca694404bb art=21e3649ba5b3f3b5",
        ),
        (
            7u64,
            "t=26.868063s ev=623 rules=96 flows=288 outages=1 tr=1297#831f15cc5ed57458 art=1883d39a31c33813",
        ),
    ];
    for (seed, want) in expected {
        let r = run_scenario(job(40, 8), &chaos_cfg(seed));
        let got = fingerprint(&r);
        assert_eq!(got, want, "chaos seed {seed}");
    }
}

#[test]
fn clean_fat_tree_run_matches_pre_index_engine() {
    let cfg = ScenarioConfig::default()
        .with_topology(FatTreeParams {
            k: 4,
            ..FatTreeParams::default()
        })
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(10)
        .with_seed(5)
        .with_trace(TraceConfig::enabled())
        .with_relaxed_order(false);
    let r = run_scenario(job(24, 6), &cfg);
    assert_eq!(
        fingerprint(&r),
        "t=12.841055s ev=640 rules=402 flows=132 outages=0 \
         tr=1374#57166f972557e4b3 art=45eda6ecb74fa3b9"
    );
}
