//! Property tests for the streaming fleet path: arrival traces are a
//! pure function of the seed, whole-fleet runs are bit-deterministic,
//! and a mid-trace snapshot/resume is indistinguishable from an
//! uninterrupted run.

use proptest::prelude::*;
use pythia_cluster::{
    capture_multi_snapshot, resume_multi_from_bytes, run_multi_scenario, MultiRunReport,
    ScenarioConfig, SchedulerKind,
};
use pythia_des::SimDuration;
use pythia_netsim::FatTreeParams;
use pythia_workloads::FleetSpec;

#[derive(Debug, Clone)]
struct FleetScn {
    jobs: usize,
    mean_secs: u64,
    seed: u64,
    shards: usize,
    epoch_ms: Option<u64>,
}

fn scn() -> impl Strategy<Value = FleetScn> {
    (
        3usize..8,
        1u64..6,
        1u64..10_000,
        1usize..5,
        prop_oneof![Just(None), Just(Some(300u64)), Just(Some(1500))],
    )
        .prop_map(|(jobs, mean_secs, seed, shards, epoch_ms)| FleetScn {
            jobs,
            mean_secs,
            seed,
            shards,
            epoch_ms,
        })
}

fn fleet_of(s: &FleetScn) -> FleetSpec {
    let mut f = FleetSpec::poisson(s.jobs, SimDuration::from_secs(s.mean_secs), s.seed);
    // Small jobs keep each proptest case sub-second.
    f.min_input_bytes = 32 << 20;
    f.max_input_bytes = 256 << 20;
    f
}

fn cfg_of(s: &FleetScn) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_topology(FatTreeParams {
            k: 4,
            ..FatTreeParams::default()
        })
        .with_scheduler(SchedulerKind::Pythia)
        .with_oversubscription(10)
        .with_seed(s.seed)
        .with_stream_jobs(true)
        .with_collector_shards(s.shards)
        // Exact solver: every comparison below is equality, not tolerance.
        .with_relaxed_order(false);
    if let Some(ms) = s.epoch_ms {
        cfg = cfg.with_install_epoch(SimDuration::from_millis(ms));
    }
    cfg
}

/// The behavioral scalars two equivalent fleet runs must share.
fn fingerprint(r: &MultiRunReport) -> (u64, u64, u64, usize, Vec<SimDuration>) {
    (
        r.events_processed,
        r.rules_installed,
        r.epoch_batches,
        r.flow_trace.len(),
        r.jobs.iter().map(|j| j.completion()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The arrival trace — instants, sizes, profiles, partitioners — is a
    /// pure function of the spec: same seed, byte-identical fleet.
    #[test]
    fn same_seed_same_trace(s in scn()) {
        let a = fleet_of(&s);
        let b = fleet_of(&s);
        prop_assert_eq!(a.trace_fingerprint(), b.trace_fingerprint());
        let (ja, jb) = (a.jobs(), b.jobs());
        prop_assert_eq!(ja.len(), jb.len());
        for ((sa, ta), (sb, tb)) in ja.iter().zip(&jb) {
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(&sa.name, &sb.name);
            prop_assert_eq!(sa.input_bytes, sb.input_bytes);
            prop_assert_eq!(sa.num_maps, sb.num_maps);
            prop_assert_eq!(sa.num_reducers, sb.num_reducers);
        }
        // Reordering the seed reorders the fleet: perturbing it moves the
        // fingerprint (seeds are drawn apart, collisions are negligible).
        let mut other = fleet_of(&s);
        other.seed ^= 0x5eed_5eed;
        prop_assert_ne!(a.trace_fingerprint(), other.trace_fingerprint());
    }

    /// Whole-fleet bit-determinism: same seed, same RunReport fingerprint
    /// (streamed jobs, sharded collector, epoch batching and all).
    #[test]
    fn same_seed_same_report(s in scn()) {
        let cfg = cfg_of(&s);
        let a = run_multi_scenario(fleet_of(&s).jobs(), &cfg);
        let b = run_multi_scenario(fleet_of(&s).jobs(), &cfg);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Wave-batched fetch starts (the control-plane fast path, on by
    /// default) are byte-identical to one-at-a-time starts in exact
    /// mode: draining a reducer's whole fetch wave through the engine as
    /// one batch must not change a single completion, event, rule, or
    /// traced flow. Holds under both cargo feature states — `cfg_of`
    /// pins the exact solver at runtime.
    #[test]
    fn wave_batching_is_byte_identical(s in scn()) {
        let a = run_multi_scenario(fleet_of(&s).jobs(), &cfg_of(&s));
        let b = run_multi_scenario(fleet_of(&s).jobs(), &cfg_of(&s).with_wave_batch(false));
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Checkpoints under wave batching land on wave boundaries (the
    /// engine drains every deferred fetch inside the dispatch that
    /// collected it), so a snapshot of a wave-batched run must resume to
    /// the same fingerprint a never-interrupted *per-event* run
    /// produces: batching survives the crash/resume path too.
    #[test]
    fn wave_batched_checkpoint_resumes_to_per_event_fingerprint(
        s in scn(), frac in 0.1f64..0.9
    ) {
        let cfg_wave = cfg_of(&s);
        let flat = run_multi_scenario(fleet_of(&s).jobs(), &cfg_of(&s).with_wave_batch(false));
        let cut = ((flat.events_processed as f64 * frac) as u64).max(1);
        let bytes = capture_multi_snapshot(fleet_of(&s).jobs(), &cfg_wave, cut)
            .expect("capture point inside the run");
        let resumed = resume_multi_from_bytes(fleet_of(&s).jobs(), &cfg_wave, &bytes)
            .expect("resume from wave-batched snapshot");
        prop_assert_eq!(fingerprint(&flat), fingerprint(&resumed));
    }

    /// A snapshot taken mid-trace and resumed must be indistinguishable
    /// from the run that was never interrupted.
    #[test]
    fn mid_trace_resume_matches_uninterrupted(s in scn(), frac in 0.1f64..0.9) {
        let cfg = cfg_of(&s);
        let straight = run_multi_scenario(fleet_of(&s).jobs(), &cfg);
        let cut = ((straight.events_processed as f64 * frac) as u64).max(1);
        let bytes = capture_multi_snapshot(fleet_of(&s).jobs(), &cfg, cut)
            .expect("capture point inside the run");
        let resumed = resume_multi_from_bytes(fleet_of(&s).jobs(), &cfg, &bytes)
            .expect("resume from mid-trace snapshot");
        prop_assert_eq!(fingerprint(&straight), fingerprint(&resumed));
    }
}
