//! The control-plane service core: prediction ingest → rule install as a
//! reusable state machine.
//!
//! The batch engine ([`crate::engine`]) and the live daemon
//! (`pythia-daemon`) drive the *same* collector + allocator + controller
//! pipeline; this module is the shared seam. Every message the engine
//! feeds into [`pythia_core::ShardedPythia`] or
//! [`pythia_openflow::Controller`] is expressible as one [`ControlMsg`],
//! and [`dispatch_control`] turns a message into the batch of
//! [`PendingRule`] installs it provokes. The engine routes its handlers
//! through this dispatcher (the byte-identical refcheck fingerprints pin
//! that the re-route changed nothing); the daemon replays the identical
//! message stream against an [`InstallBackend`]-shaped sink — which is
//! exactly how the daemon-vs-batch equivalence test works.
//!
//! [`ServiceCore`] bundles the state the dispatcher needs (sharded
//! collector, SDN controller, pod map, background residuals) and knows
//! how to build it from a [`ScenarioConfig`] *identically* to
//! `Engine::new`, so a daemon fed the tapped prediction stream of a
//! batch run reproduces its rule stream byte for byte.
//!
//! [`InstallBackend`]: ../../pythia_daemon/backend/trait.InstallBackend.html

use std::sync::Arc;

use pythia_core::{PredictionMsg, ShardedPythia};
use pythia_des::{RngFactory, SimTime};
use pythia_hadoop::{JobId, MapTaskId, ReducerId, ServerId};
use pythia_netsim::{background_flows, LinkId, MultiRack};
use pythia_openflow::{Controller, PendingRule};
use pythia_trace::Trace;

use crate::config::{ScenarioConfig, SchedulerKind};

/// Tenant id used for rules not attributable to a single job (controller
/// resyncs, background re-placements).
pub const SYSTEM_TENANT: u32 = u32::MAX;

/// One control-plane input: everything the engine (or a live agent
/// fleet) can tell the collector/allocator/controller pipeline.
///
/// Payload-bearing variants share their heap data via [`Arc`], so a
/// message is cheap to clone (tap recording, bounded-queue handoff,
/// cross-thread ingest) and `Send` for the daemon's channel API.
#[derive(Debug, Clone)]
pub enum ControlMsg {
    /// A prediction delivered to the collector (post management network:
    /// the daemon ingests *deliveries*, the lossy wire stays engine-side).
    Prediction(Arc<PredictionMsg>),
    /// A reducer was scheduled on `server` — parked predictions for the
    /// job may now be placeable.
    ReducerLaunched {
        /// Job owning the reducer.
        job: JobId,
        /// The launched reducer.
        reducer: ReducerId,
        /// The Hadoop server it landed on.
        server: ServerId,
    },
    /// A shuffle fetch finished — the collector drains the delivered
    /// demand from its aggregate.
    FetchCompleted {
        /// Job owning the fetch.
        job: JobId,
        /// Source map task.
        map: MapTaskId,
        /// Destination reducer.
        reducer: ReducerId,
        /// Mapper-side server.
        src: ServerId,
        /// Reducer-side server.
        dst: ServerId,
    },
    /// Periodic link-load telemetry (dense, indexed by [`LinkId`]) for
    /// the controller's load view.
    LinkLoads {
        /// Observed load per link, bits/sec.
        loads: Arc<[f64]>,
    },
    /// A directed link failed or recovered (controller routing-graph
    /// update; the fabric-side consequences stay with the caller).
    LinkState {
        /// The directed link.
        link: LinkId,
        /// `true` = recovered.
        up: bool,
    },
    /// The background load shifted: refresh the residual table *and*
    /// re-place active pairs whose path collapsed.
    BackgroundUpdate {
        /// CBR background per link, bits/sec.
        loads: Arc<[f64]>,
    },
    /// Refresh the residual table only (no re-placement sweep) — the
    /// post-recovery sync of a statically-profiled fabric.
    BackgroundRefresh {
        /// CBR background per link, bits/sec.
        loads: Arc<[f64]>,
    },
    /// The SDN controller crashed: stop issuing rules.
    ControllerDown,
    /// The SDN controller recovered: resync the full surviving rule set.
    ControllerRestart,
    /// TTL sweep over parked (unknown-reducer) collector entries.
    ExpireParked,
}

/// The tenant (job) a message's rules are attributed to;
/// [`SYSTEM_TENANT`] for fabric-driven messages.
pub fn tenant_of(msg: &ControlMsg) -> u32 {
    match msg {
        ControlMsg::Prediction(m) => m.job.0,
        ControlMsg::ReducerLaunched { job, .. } | ControlMsg::FetchCompleted { job, .. } => job.0,
        _ => SYSTEM_TENANT,
    }
}

/// Feed one message into the pipeline and return the rule installs it
/// provoked. This is the *only* mutation path shared by the batch engine
/// and the daemon — identical message streams against identical initial
/// state produce identical rule streams.
pub fn dispatch_control(
    py: &mut ShardedPythia,
    controller: &mut Controller,
    now: SimTime,
    msg: &ControlMsg,
) -> Vec<PendingRule> {
    match msg {
        ControlMsg::Prediction(m) => py.on_prediction_delivered(now, m, controller),
        ControlMsg::ReducerLaunched {
            job,
            reducer,
            server,
        } => py.on_reducer_launched(now, *job, *reducer, *server, controller),
        ControlMsg::FetchCompleted {
            job,
            map,
            reducer,
            src,
            dst,
        } => {
            py.on_fetch_completed(*job, *map, *reducer, *src, *dst);
            Vec::new()
        }
        ControlMsg::LinkLoads { loads } => {
            for (i, &bps) in loads.iter().enumerate() {
                controller.observe_link_load(LinkId(i as u32), bps);
            }
            Vec::new()
        }
        ControlMsg::LinkState { link, up } => {
            controller.on_link_state(*link, *up);
            Vec::new()
        }
        ControlMsg::BackgroundUpdate { loads } => {
            py.set_background_from(loads);
            py.on_background_update(now, controller)
        }
        ControlMsg::BackgroundRefresh { loads } => {
            py.set_background_from(loads);
            Vec::new()
        }
        ControlMsg::ControllerDown => {
            py.set_controller_down();
            Vec::new()
        }
        ControlMsg::ControllerRestart => py.on_controller_restart(now, controller),
        ControlMsg::ExpireParked => {
            py.expire_parked(now);
            Vec::new()
        }
    }
}

/// Building a [`ServiceCore`] can fail in configuration-shaped ways; no
/// panics on the service path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The scenario does not run the Pythia control plane (ECMP and
    /// Hedera have no prediction pipeline to serve).
    NotPythia {
        /// The scheduler the configuration named.
        scheduler: &'static str,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NotPythia { scheduler } => write!(
                f,
                "the control-plane service requires the Pythia scheduler, \
                 configuration names {scheduler}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Pod (fat-tree) or rack (leaf fabrics) of every node; `u32::MAX` for
/// core switches, which belong to no pod. This drives collector sharding
/// and per-pod install batching — the engine and the daemon must agree
/// on it byte for byte.
pub fn pod_of_nodes(mr: &MultiRack) -> Vec<u32> {
    let mut pod_of_node = vec![u32::MAX; mr.topology.num_nodes()];
    if let Some(clos) = &mr.clos {
        for &srv in &mr.servers {
            if let Some((edge, _)) = clos.host_up(srv) {
                if let Some(pod) = clos.pod_of_edge(edge) {
                    pod_of_node[srv.0 as usize] = pod;
                    pod_of_node[edge.0 as usize] = pod;
                }
            }
        }
        for pod in 0..clos.k() {
            for &agg in clos.aggs_of_pod(pod) {
                pod_of_node[agg.0 as usize] = pod;
            }
        }
    } else {
        for (n, node) in mr.topology.nodes() {
            if let Some(rack) = node.rack() {
                pod_of_node[n.0 as usize] = rack;
            }
        }
    }
    pod_of_node
}

/// The static CBR background per link (bits/sec) the scenario starts
/// with — what the link-load service would report net of Pythia's own
/// shuffle traffic. Must match the engine's seeding of the residual
/// table exactly.
pub fn static_background_bps(mr: &MultiRack, cfg: &ScenarioConfig) -> Vec<f64> {
    let mut background_bps = vec![0.0; mr.topology.num_links()];
    for (spec, links) in background_flows(&mr.topology, &mr.trunk_links, cfg.oversubscription) {
        // Entries with no valid path install no flow engine-side (they are
        // skipped and counted there), so they contribute no load here
        // either — both sides see the same residual table.
        if pythia_netsim::Path::new(&mr.topology, links.clone()).is_err() {
            continue;
        }
        if let pythia_netsim::FlowKind::Cbr { rate_bps } = spec.kind {
            for &l in &links {
                background_bps[l.0 as usize] += rate_bps;
            }
        }
    }
    background_bps
}

/// The state [`dispatch_control`] mutates, bundled with the fabric
/// context needed to build it — the daemon's heart, constructed
/// *identically* to the corresponding pieces of `Engine::new` so a
/// replayed message stream evolves the same bytes.
pub struct ServiceCore {
    /// The pod-sharded collector + allocator.
    pub pythia: ShardedPythia,
    /// The SDN controller (path candidates, rule issue, install latency).
    pub controller: Controller,
    /// Pod of every node (see [`pod_of_nodes`]).
    pub pod_of_node: Vec<u32>,
    /// The built fabric (topology, servers, trunk links, Clos structure).
    pub mr: MultiRack,
    /// The flight recorder every component reports into.
    pub trace: Trace,
}

impl ServiceCore {
    /// Build the service core for a scenario. [`ServiceError::NotPythia`]
    /// unless the configuration runs the Pythia scheduler.
    pub fn from_config(cfg: &ScenarioConfig) -> Result<ServiceCore, ServiceError> {
        if cfg.scheduler != SchedulerKind::Pythia {
            return Err(ServiceError::NotPythia {
                scheduler: cfg.scheduler.label(),
            });
        }
        let mr = cfg.topology.build();
        let rngs = RngFactory::new(cfg.seed);
        let trace = Trace::new(&cfg.trace);
        let mut controller = Controller::with_clos(
            mr.topology.clone(),
            mr.clos.clone(),
            cfg.controller.clone(),
            &rngs,
        );
        controller.set_trace(trace.clone());
        let pod_of_node = pod_of_nodes(&mr);
        let pod_of_server: Vec<u32> = mr
            .servers
            .iter()
            .map(|&n| pod_of_node[n.0 as usize])
            .collect();
        let mut pythia = ShardedPythia::new(
            cfg.pythia.clone(),
            &mr.topology,
            mr.servers.clone(),
            pod_of_server,
            cfg.collector_shards,
        );
        pythia.set_trace(trace.clone());
        pythia.set_background_from(&static_background_bps(&mr, cfg));
        Ok(ServiceCore {
            pythia,
            controller,
            pod_of_node,
            mr,
            trace,
        })
    }

    /// Dispatch one message (see [`dispatch_control`]).
    pub fn dispatch(&mut self, now: SimTime, msg: &ControlMsg) -> Vec<PendingRule> {
        self.trace.set_now(now);
        dispatch_control(&mut self.pythia, &mut self.controller, now, msg)
    }

    /// Dispatch a time-ordered message batch — the shape a socket
    /// transport hands a live daemon, and what the engine's wave-batched
    /// fetch chain produces. `sink` sees every message *after* dispatch
    /// with the rules it provoked, so per-message attribution (tenants,
    /// backends, latency stamps) is preserved while the trace clock is
    /// stamped once per distinct timestamp instead of once per message.
    /// Message-by-message equivalent to calling [`ServiceCore::dispatch`]
    /// in a loop.
    pub fn dispatch_batch<I, F>(&mut self, msgs: I, mut sink: F)
    where
        I: IntoIterator<Item = (SimTime, ControlMsg)>,
        F: FnMut(SimTime, &ControlMsg, Vec<PendingRule>),
    {
        let mut stamped: Option<SimTime> = None;
        for (at, msg) in msgs {
            if stamped != Some(at) {
                self.trace.set_now(at);
                stamped = Some(at);
            }
            let rules = dispatch_control(&mut self.pythia, &mut self.controller, at, &msg);
            sink(at, &msg, rules);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_pythia_scheduler_is_a_typed_error() {
        let cfg = ScenarioConfig::default().with_scheduler(SchedulerKind::Ecmp);
        let err = ServiceCore::from_config(&cfg).err().expect("must refuse");
        assert_eq!(err, ServiceError::NotPythia { scheduler: "ecmp" });
        assert!(format!("{err}").contains("ecmp"));
    }

    #[test]
    fn tenants_attribute_job_messages_only() {
        let msg = ControlMsg::ReducerLaunched {
            job: JobId(3),
            reducer: ReducerId(0),
            server: ServerId(1),
        };
        assert_eq!(tenant_of(&msg), 3);
        assert_eq!(tenant_of(&ControlMsg::ControllerDown), SYSTEM_TENANT);
        assert_eq!(tenant_of(&ControlMsg::ExpireParked), SYSTEM_TENANT);
    }

    #[test]
    fn core_construction_matches_scenario_shape() {
        let cfg = ScenarioConfig::default().with_scheduler(SchedulerKind::Pythia);
        let core = ServiceCore::from_config(&cfg).expect("pythia");
        assert_eq!(core.pod_of_node.len(), core.mr.topology.num_nodes());
        assert_eq!(core.pythia.num_shards(), cfg.collector_shards);
    }
}
