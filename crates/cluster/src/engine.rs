//! The discrete-event engine: Hadoop × network × SDN control × Pythia.
//!
//! This is the only place in the workspace where simulated time actually
//! advances. The engine owns the event queue and drives the pure state
//! machines of the domain crates according to their contracts:
//!
//! * [`pythia_netsim::FlowNet`] — advance → mutate → recompute → schedule
//!   the single next-completion event;
//! * [`pythia_hadoop::MapReduceSim`] — feed timer/fetch inputs, act on the
//!   returned [`HadoopEvent`]s;
//! * [`pythia_core::PythiaSystem`] — spill/prediction/reducer/fetch hooks,
//!   returned rules scheduled with their hardware install latency;
//! * [`pythia_baselines::HederaScheduler`] — periodic rebalance ticks.
//!
//! Forwarding fidelity: every shuffle flow's path is resolved by walking
//! the switch flow tables ([`pythia_openflow::Dataplane`]), falling back
//! to ECMP hashing where no rule matches. A rule that becomes active
//! mid-flow re-resolves and reroutes the matching in-flight flows, exactly
//! like hardware that matches packets, not flows.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use pythia_baselines::{EcmpForwarding, HederaScheduler};
use pythia_core::{overhead, MgmtNet, PredictionMsg, ShardedPythia};
use pythia_des::{EventId, EventQueue, RngFactory, SimDuration, SimTime};
use pythia_hadoop::{FetchId, HadoopEvent, JobId, MapReduceSim, MapTaskId, ReducerId, ServerId};
use pythia_metrics::{DegradationReport, FlowTrace, ShuffleFlowRecord};
use pythia_netsim::{
    background_flows, redraw_group_rates, BackgroundProfile, FiveTuple, FlowId, FlowNet, FlowSpec,
    LinkId, MultiRack, NetFlowProbe, NodeId, Path, Topology,
};
use pythia_openflow::{Controller, Dataplane, EcmpNextHops, FlowRule, ResolveError};
use pythia_snapshot::shell::{load_checkpoint, store_checkpoint, Manifest};
use pythia_snapshot::{
    crc32, Persist, Reader, SectionReader, SectionWriter, SnapshotError, Writer, SNAPSHOT_VERSION,
};
use pythia_trace::{Component, Trace, TraceEvent};

use crate::config::{ScenarioConfig, SchedulerKind};
use crate::report::{JobOutcome, MultiRunReport, RunReport};
use crate::service::{self, ControlMsg, SYSTEM_TENANT};
use crate::snapshot::{config_hash, CheckpointPolicy};

/// Engine events.
#[derive(Debug)]
enum Event {
    JobStart(JobId),
    MapFinish(JobId, MapTaskId),
    ReducerStart(JobId, ReducerId),
    SortFinish(JobId, ReducerId),
    ReducerFinish(JobId, ReducerId),
    /// The projected earliest flow completion (content-free: the top-of-
    /// loop advance does the work).
    FlowCheck,
    /// A prediction copy arriving off the management network. `Arc` so
    /// the lossy channel's duplicate deliveries share one heap message
    /// instead of deep-cloning the server list per copy, and so the
    /// delivery converts into a [`ControlMsg`] (which must be `Send` for
    /// the daemon's cross-thread ingest) without a deep clone.
    PredictionDeliver(Arc<PredictionMsg>),
    RuleActive {
        switch: NodeId,
        rule: FlowRule,
        /// Controller-connection epoch the install was issued under. A
        /// crash bumps the engine's epoch, so in-flight installs from
        /// before the crash are recognized as dead at dispatch and
        /// skipped — O(1) per crash instead of cancel-draining a handle
        /// list.
        generation: u64,
        /// Tenant (job) the rule was issued on behalf of, for per-tenant
        /// install accounting; [`SYSTEM_TENANT`] for rules derived from
        /// fabric events (background shifts, controller resyncs) rather
        /// than one job's predictions.
        tenant: u32,
    },
    /// Drain the per-pod buffered rule installs (epoch-batched install
    /// mode): one batched push per pod per epoch instead of a controller
    /// round-trip per prediction.
    EpochFlush,
    HederaTick,
    LinkLoadSample,
    ProbeSample,
    /// Redraw the background split across parallel trunks (the
    /// fluctuating-background profile).
    BackgroundChange,
    /// A trunk cable fails or recovers.
    LinkState {
        trunk_cable: usize,
        up: bool,
    },
    /// The SDN controller crashes (`up: false`) or restarts (`up: true`).
    ControllerState {
        up: bool,
    },
    /// Every instrumentation agent restarts and replays the spill indices
    /// still on disk (end-to-end idempotent-delivery exercise).
    AgentRespill,
    /// Periodic TTL sweep over parked collector entries.
    ParkedSweep,
}

/// Flight-recorder span name for each event type, so the histogram
/// registry attributes dispatch cost per handler.
fn event_span_name(ev: &Event) -> &'static str {
    match ev {
        Event::JobStart(..) => "ev_job_start",
        Event::MapFinish(..) => "ev_map_finish",
        Event::ReducerStart(..) => "ev_reducer_start",
        Event::SortFinish(..) => "ev_sort_finish",
        Event::ReducerFinish(..) => "ev_reducer_finish",
        Event::FlowCheck => "ev_flow_check",
        Event::PredictionDeliver(..) => "ev_prediction_deliver",
        Event::RuleActive { .. } => "ev_rule_active",
        Event::HederaTick => "ev_hedera_tick",
        Event::LinkLoadSample => "ev_link_load_sample",
        Event::ProbeSample => "ev_probe_sample",
        Event::BackgroundChange => "ev_background_change",
        Event::LinkState { .. } => "ev_link_state",
        Event::ControllerState { .. } => "ev_controller_state",
        Event::AgentRespill => "ev_agent_respill",
        Event::ParkedSweep => "ev_parked_sweep",
        Event::EpochFlush => "ev_epoch_flush",
    }
}

/// Metadata the engine keeps per in-flight fetch (Hadoop drops its own
/// copy when the fetch completes, but Pythia's drain needs it after).
#[derive(Debug, Clone, Copy)]
struct FetchInfo {
    map: MapTaskId,
    reducer: ReducerId,
    src: ServerId,
    dst: ServerId,
}

/// A memoized pair→path resolution. Invalidated per pair when a rule for
/// that pair lands (a server-pair rule cannot change any other pair's
/// resolution), and globally — via the engine's routing epoch — on ECMP
/// reconvergence or wildcard rule changes.
#[derive(Debug, Clone)]
struct CachedPath {
    routing_epoch: u64,
    path: Path,
}

/// A shuffle fetch that had no route when it tried to start (degraded
/// fabric, e.g. every trunk cable down). Parked and retried on the next
/// topology recovery instead of crashing the run.
#[derive(Debug, Clone, Copy)]
struct ParkedFetch {
    job: JobId,
    fetch: FetchId,
    map: MapTaskId,
    reducer: ReducerId,
    src: ServerId,
    dst: ServerId,
    app_bytes: u64,
    src_port: u16,
    dst_port: u16,
}

/// One fetch of a buffered shuffle wave: everything `start_fetch_flow`
/// needs, queued while the rest of the Hadoop output batch drains so the
/// whole wave starts through one amortized pass (`start_fetch_wave`).
/// Fetch starts push no events and draw no randomness, so the deferral
/// is invisible to queue sequencing and RNG order — the wave path is
/// byte-identical to starting each fetch in place.
#[derive(Debug, Clone, Copy)]
struct WaveFetch {
    fetch: FetchId,
    map: MapTaskId,
    reducer: ReducerId,
    src: ServerId,
    dst: ServerId,
    app_bytes: u64,
    src_port: u16,
    dst_port: u16,
}

/// Queued events ride inside checkpoints verbatim — times, FIFO sequence
/// numbers and payloads — so a resumed run pops them in exactly the order
/// the interrupted run would have.
impl Persist for Event {
    fn put(&self, w: &mut SectionWriter) {
        match self {
            Event::JobStart(j) => {
                0u8.put(w);
                j.put(w);
            }
            Event::MapFinish(j, m) => {
                1u8.put(w);
                j.put(w);
                m.put(w);
            }
            Event::ReducerStart(j, r) => {
                2u8.put(w);
                j.put(w);
                r.put(w);
            }
            Event::SortFinish(j, r) => {
                3u8.put(w);
                j.put(w);
                r.put(w);
            }
            Event::ReducerFinish(j, r) => {
                4u8.put(w);
                j.put(w);
                r.put(w);
            }
            Event::FlowCheck => 5u8.put(w),
            // The shared Arc is flattened: duplicate deliveries of one
            // message serialize the same payload and restore as separate
            // allocations — identical semantics, slightly more memory.
            Event::PredictionDeliver(msg) => {
                6u8.put(w);
                msg.as_ref().put(w);
            }
            Event::RuleActive {
                switch,
                rule,
                generation,
                tenant,
            } => {
                7u8.put(w);
                switch.put(w);
                rule.put(w);
                generation.put(w);
                tenant.put(w);
            }
            Event::HederaTick => 8u8.put(w),
            Event::LinkLoadSample => 9u8.put(w),
            Event::ProbeSample => 10u8.put(w),
            Event::BackgroundChange => 11u8.put(w),
            Event::LinkState { trunk_cable, up } => {
                12u8.put(w);
                trunk_cable.put(w);
                up.put(w);
            }
            Event::ControllerState { up } => {
                13u8.put(w);
                up.put(w);
            }
            Event::AgentRespill => 14u8.put(w),
            Event::ParkedSweep => 15u8.put(w),
            Event::EpochFlush => 16u8.put(w),
        }
    }

    fn get(r: &mut SectionReader) -> Result<Event, SnapshotError> {
        Ok(match u8::get(r)? {
            0 => Event::JobStart(JobId::get(r)?),
            1 => Event::MapFinish(JobId::get(r)?, MapTaskId::get(r)?),
            2 => Event::ReducerStart(JobId::get(r)?, ReducerId::get(r)?),
            3 => Event::SortFinish(JobId::get(r)?, ReducerId::get(r)?),
            4 => Event::ReducerFinish(JobId::get(r)?, ReducerId::get(r)?),
            5 => Event::FlowCheck,
            6 => Event::PredictionDeliver(Arc::new(PredictionMsg::get(r)?)),
            7 => Event::RuleActive {
                switch: NodeId::get(r)?,
                rule: FlowRule::get(r)?,
                generation: u64::get(r)?,
                tenant: u32::get(r)?,
            },
            8 => Event::HederaTick,
            9 => Event::LinkLoadSample,
            10 => Event::ProbeSample,
            11 => Event::BackgroundChange,
            12 => Event::LinkState {
                trunk_cable: usize::get(r)?,
                up: bool::get(r)?,
            },
            13 => Event::ControllerState { up: bool::get(r)? },
            14 => Event::AgentRespill,
            15 => Event::ParkedSweep,
            16 => Event::EpochFlush,
            t => return Err(r.malformed(format!("unknown event tag {t}"))),
        })
    }
}

impl Persist for FetchInfo {
    fn put(&self, w: &mut SectionWriter) {
        self.map.put(w);
        self.reducer.put(w);
        self.src.put(w);
        self.dst.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<FetchInfo, SnapshotError> {
        Ok(FetchInfo {
            map: MapTaskId::get(r)?,
            reducer: ReducerId::get(r)?,
            src: ServerId::get(r)?,
            dst: ServerId::get(r)?,
        })
    }
}

impl Persist for ParkedFetch {
    fn put(&self, w: &mut SectionWriter) {
        self.job.put(w);
        self.fetch.put(w);
        self.map.put(w);
        self.reducer.put(w);
        self.src.put(w);
        self.dst.put(w);
        self.app_bytes.put(w);
        self.src_port.put(w);
        self.dst_port.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<ParkedFetch, SnapshotError> {
        Ok(ParkedFetch {
            job: JobId::get(r)?,
            fetch: FetchId::get(r)?,
            map: MapTaskId::get(r)?,
            reducer: ReducerId::get(r)?,
            src: ServerId::get(r)?,
            dst: ServerId::get(r)?,
            app_bytes: u64::get(r)?,
            src_port: u16::get(r)?,
            dst_port: u16::get(r)?,
        })
    }
}

/// Range-check a deserialized event payload against the running scenario
/// so a snapshot that decodes but references entities the scenario does
/// not have surfaces as a typed restore error, never an index panic at
/// dispatch.
fn validate_event(
    ev: &Event,
    n_jobs: usize,
    n_nodes: usize,
    n_links: usize,
    n_servers: usize,
    n_cables: usize,
) -> Result<(), String> {
    let job_ok = |j: JobId| -> Result<(), String> {
        if (j.0 as usize) < n_jobs {
            Ok(())
        } else {
            Err(format!("event job {} out of range", j.0))
        }
    };
    match ev {
        Event::JobStart(j)
        | Event::MapFinish(j, _)
        | Event::ReducerStart(j, _)
        | Event::SortFinish(j, _)
        | Event::ReducerFinish(j, _) => job_ok(*j)?,
        Event::PredictionDeliver(m) => {
            job_ok(m.job)?;
            if m.src_server.0 as usize >= n_servers {
                return Err(format!(
                    "prediction source server {} out of range",
                    m.src_server.0
                ));
            }
        }
        Event::RuleActive {
            switch,
            rule,
            tenant,
            ..
        } => {
            if switch.0 as usize >= n_nodes {
                return Err(format!("rule switch {} out of range", switch.0));
            }
            if rule.out_link.0 as usize >= n_links {
                return Err(format!("rule out-link {} out of range", rule.out_link.0));
            }
            for n in [rule.matcher.src, rule.matcher.dst].into_iter().flatten() {
                if n.0 as usize >= n_nodes {
                    return Err(format!("rule matcher node {} out of range", n.0));
                }
            }
            if *tenant != SYSTEM_TENANT && *tenant as usize >= n_jobs {
                return Err(format!("rule tenant {tenant} out of range"));
            }
        }
        Event::LinkState { trunk_cable, .. } if *trunk_cable >= n_cables => {
            return Err(format!("trunk cable {trunk_cable} out of range"));
        }
        _ => {}
    }
    Ok(())
}

/// Run one scenario to job completion.
pub fn run_scenario(job: pythia_hadoop::JobSpec, cfg: &ScenarioConfig) -> RunReport {
    let multi = run_multi_scenario(vec![(job, pythia_des::SimDuration::ZERO)], cfg);
    multi.into_single()
}

/// Run several jobs concurrently (each submitted at its start offset).
/// Pythia's collector aggregates predictions across all of them — two
/// jobs shuffling between the same server pair share one aggregated
/// transfer and one rule, exactly as the §IV aggregation implies.
pub fn run_multi_scenario(
    jobs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
    cfg: &ScenarioConfig,
) -> MultiRunReport {
    Engine::new(jobs, cfg).run()
}

/// Shared append-only log of dispatched control messages (see
/// [`run_multi_scenario_tapped`]).
type ControlTap = Rc<RefCell<Vec<(SimTime, ControlMsg)>>>;

/// Run several jobs while recording every control-plane message the
/// engine dispatched into the Pythia pipeline, with the sim time it was
/// dispatched at — the stream a live `pythia-daemon` replays to
/// reproduce the batch run's rule installs byte for byte (the daemon
/// equivalence test). The tap changes no engine behavior; the report is
/// identical to [`run_multi_scenario`]'s.
pub fn run_multi_scenario_tapped(
    jobs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
    cfg: &ScenarioConfig,
) -> (MultiRunReport, Vec<(SimTime, ControlMsg)>) {
    let tap = Rc::new(RefCell::new(Vec::new()));
    let mut e = Engine::new(jobs, cfg);
    e.control_tap = Some(Rc::clone(&tap));
    let report = e.run();
    let msgs = Rc::try_unwrap(tap)
        .expect("engine dropped its tap handle")
        .into_inner();
    (report, msgs)
}

/// Single-job convenience wrapper over [`run_multi_scenario_tapped`].
pub fn run_scenario_tapped(
    job: pythia_hadoop::JobSpec,
    cfg: &ScenarioConfig,
) -> (RunReport, Vec<(SimTime, ControlMsg)>) {
    let (multi, msgs) = run_multi_scenario_tapped(vec![(job, pythia_des::SimDuration::ZERO)], cfg);
    (multi.into_single(), msgs)
}

/// Run several jobs with periodic crash-durable checkpoints written per
/// `policy`. A `kill -9` at any instant leaves the last good checkpoint
/// intact in `policy.dir`; [`resume_multi_scenario`] picks it up. On the
/// exact solver path the checkpointing run is byte-identical to an
/// uncheckpointed one.
pub fn run_multi_scenario_checkpointed(
    jobs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
    cfg: &ScenarioConfig,
    policy: &CheckpointPolicy,
) -> Result<MultiRunReport, SnapshotError> {
    let mut e = Engine::new(jobs, cfg);
    e.kickoff();
    let cp = CheckpointRuntime::new(policy, config_hash(cfg), 0, SimTime::ZERO);
    match e.run_loop(Some(cp), None)? {
        LoopOutcome::Done(r) => Ok(*r),
        LoopOutcome::Captured(..) => unreachable!("no capture point requested"),
    }
}

/// Resume the latest checkpoint in `dir` and run to completion. The
/// manifest's configuration hash must match `cfg` (a resume under a
/// different scenario is [`SnapshotError::ConfigMismatch`]); `jobs` must
/// be the same job list the checkpointed run was started with. Pass a
/// `policy` to keep checkpointing after the resume.
pub fn resume_multi_scenario(
    jobs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
    cfg: &ScenarioConfig,
    dir: &std::path::Path,
    policy: Option<&CheckpointPolicy>,
) -> Result<MultiRunReport, SnapshotError> {
    let (manifest, bytes) = load_checkpoint(dir)?;
    let found = config_hash(cfg);
    if manifest.config_hash != found {
        return Err(SnapshotError::ConfigMismatch {
            expected: manifest.config_hash,
            found,
        });
    }
    let mut e = Engine::new(jobs, cfg);
    let now = e.restore_from_bytes(&bytes, false)?;
    let cp = policy.map(|p| {
        let mut rt = CheckpointRuntime::new(p, found, e.events_processed, now);
        rt.last_file = Some(manifest.snapshot_file.clone());
        rt
    });
    match e.run_loop(cp, None)? {
        LoopOutcome::Done(r) => Ok(*r),
        LoopOutcome::Captured(..) => unreachable!("no capture point requested"),
    }
}

/// Resume directly from in-memory snapshot bytes (no manifest, no
/// config-hash gate — the caller vouches that `cfg` and `jobs` match the
/// scenario the snapshot was taken under; every structural mismatch still
/// surfaces as a typed error from the section restores).
pub fn resume_multi_from_bytes(
    jobs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
    cfg: &ScenarioConfig,
    bytes: &[u8],
) -> Result<MultiRunReport, SnapshotError> {
    let mut e = Engine::new(jobs, cfg);
    e.restore_from_bytes(bytes, false)?;
    match e.run_loop(None, None)? {
        LoopOutcome::Done(r) => Ok(*r),
        LoopOutcome::Captured(..) => unreachable!("no capture point requested"),
    }
}

/// Fork: resume `bytes` under a (possibly) different chaos schedule.
/// The warm-up the snapshot captured is shared; the queued chaos events
/// (link faults, controller outages, agent respills) are dropped and
/// re-scheduled from `cfg`. Every chaos instant in `cfg` must lie
/// strictly after the fork point, else [`SnapshotError::Fork`]. All
/// non-chaos configuration must match the snapshotted run (see
/// [`crate::snapshot::fork_config_hash`]).
pub fn fork_multi_scenario(
    jobs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
    cfg: &ScenarioConfig,
    bytes: &[u8],
) -> Result<MultiRunReport, SnapshotError> {
    let mut e = Engine::new(jobs, cfg);
    e.restore_from_bytes(bytes, true)?;
    match e.run_loop(None, None)? {
        LoopOutcome::Done(r) => Ok(*r),
        LoopOutcome::Captured(..) => unreachable!("no capture point requested"),
    }
}

/// Run until `after_events` events have been processed and return the
/// snapshot taken there — the shared warm-up for fork-based chaos sweeps.
/// [`SnapshotError::Fork`] if the run completes first.
pub fn capture_multi_snapshot(
    jobs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
    cfg: &ScenarioConfig,
    after_events: u64,
) -> Result<Vec<u8>, SnapshotError> {
    let mut e = Engine::new(jobs, cfg);
    e.kickoff();
    match e.run_loop(None, Some(after_events))? {
        LoopOutcome::Captured(bytes) => Ok(bytes),
        LoopOutcome::Done(r) => Err(SnapshotError::Fork {
            detail: format!(
                "run completed after {} events, before the requested fork point {after_events}",
                r.events_processed
            ),
        }),
    }
}

/// Live checkpointing state for one run.
struct CheckpointRuntime<'p> {
    policy: &'p CheckpointPolicy,
    cfg_hash: u64,
    events_at_last: u64,
    next_sim: Option<SimTime>,
    last_file: Option<String>,
}

impl<'p> CheckpointRuntime<'p> {
    fn new(policy: &'p CheckpointPolicy, cfg_hash: u64, events_now: u64, now: SimTime) -> Self {
        CheckpointRuntime {
            policy,
            cfg_hash,
            events_at_last: events_now,
            next_sim: policy.every_sim_time.map(|d| now + d),
            last_file: None,
        }
    }

    fn due(&self, events: u64, now: SimTime) -> bool {
        self.policy
            .every_events
            .is_some_and(|n| events - self.events_at_last >= n)
            || self.next_sim.is_some_and(|t| now >= t)
    }
}

/// What `run_loop` produced: a finished report, or — in capture mode — a
/// snapshot taken at the requested event count.
enum LoopOutcome {
    Done(Box<MultiRunReport>),
    Captured(Vec<u8>),
}

/// Worker-thread count for the relaxed-order solver.
fn solver_workers(cfg: &ScenarioConfig) -> usize {
    if cfg.solver_workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        cfg.solver_workers
    }
}

/// A trunk-direction background group: (per-cable capacity, member CBR
/// flow ids ordered like the group's links).
type BgGroup = (f64, Vec<(LinkId, FlowId)>);

/// What installing the over-subscription background produced: the static
/// per-link load, the per-direction trunk groups, and how many entries
/// were skipped because they formed no valid path.
struct BackgroundInstall {
    background_bps: Vec<f64>,
    groups: Vec<BgGroup>,
    skipped: u64,
}

/// Install the background CBR flows (§V-A) into the network, grouped by
/// trunk direction so the fluctuating profile can redistribute load
/// within each group. An entry that cannot form a valid path — a
/// degenerate or degraded fabric handing back an empty or discontinuous
/// link list — is skipped and counted instead of panicking: the run
/// proceeds without that load, the same graceful degradation as
/// unroutable fetches.
fn install_background_flows(
    net: &mut FlowNet,
    topo: &Topology,
    flows: Vec<(FlowSpec, Vec<LinkId>)>,
) -> BackgroundInstall {
    let mut background_bps = vec![0.0; topo.num_links()];
    let mut group_map: BTreeMap<(NodeId, NodeId), BgGroup> = BTreeMap::new();
    let mut skipped = 0u64;
    for (spec, links) in flows {
        let Some(&link) = links.first() else {
            skipped += 1;
            continue;
        };
        let (src, dst, cap) = {
            let l = topo.link(link);
            (l.src, l.dst, l.capacity_bps)
        };
        let Ok(path) = Path::new(topo, links) else {
            skipped += 1;
            continue;
        };
        // Rates accumulate only for flows that actually install, so a
        // skipped entry contributes no phantom background load.
        if let pythia_netsim::FlowKind::Cbr { rate_bps } = spec.kind {
            for &l in path.links() {
                background_bps[l.0 as usize] += rate_bps;
            }
        }
        let fid = net.start_flow(spec, path);
        group_map
            .entry((src, dst))
            .or_insert((cap, Vec::new()))
            .1
            .push((link, fid));
    }
    BackgroundInstall {
        background_bps,
        groups: group_map.into_values().collect(),
        skipped,
    }
}

/// One job being driven by the engine.
///
/// In the classic (non-streaming) mode `sim` is constructed eagerly at
/// engine build and lives for the whole run. With
/// [`ScenarioConfig::stream_jobs`] the slot is a small state machine:
/// the spec waits in `spec` until the `JobStart` event materializes the
/// simulator (deterministically — the per-job RNG seed depends only on
/// the scenario seed and the job index), and job completion retires the
/// simulator again, keeping only the timeline for the final report. A
/// day-long arrival trace then holds Hadoop state for the jobs currently
/// *running*, not for every job that ever ran.
struct JobSlot {
    /// Deferred spec (streaming mode, before `JobStart`).
    spec: Option<pythia_hadoop::JobSpec>,
    /// The live simulator (always present in eager mode; present between
    /// materialization and retirement in streaming mode).
    sim: Option<MapReduceSim>,
    /// Timeline kept after a streamed job retires its simulator.
    timeline: Option<pythia_hadoop::Timeline>,
    name: String,
    start_at: SimTime,
    started: bool,
    /// Set when the job's `JobCompleted` event was processed; drives the
    /// O(1) `jobs_remaining` counter that replaced the fleet-wide
    /// `all_done` scan.
    done: bool,
}

/// A rule install parked in the per-pod epoch buffer (epoch-batched
/// install mode): everything needed to emit the `RuleActive` at flush.
#[derive(Debug, Clone)]
struct BufferedRule {
    switch: NodeId,
    rule: FlowRule,
    delay: SimDuration,
    tenant: u32,
}

impl Persist for BufferedRule {
    fn put(&self, w: &mut SectionWriter) {
        self.switch.put(w);
        self.rule.put(w);
        self.delay.put(w);
        self.tenant.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<BufferedRule, SnapshotError> {
        Ok(BufferedRule {
            switch: NodeId::get(r)?,
            rule: FlowRule::get(r)?,
            delay: SimDuration::get(r)?,
            tenant: u32::get(r)?,
        })
    }
}

struct Engine<'a> {
    cfg: &'a ScenarioConfig,
    mr: MultiRack,
    net: FlowNet,
    dataplane: Dataplane,
    controller: Controller,
    nexthops: EcmpNextHops,
    ecmp: EcmpForwarding,
    jobs: Vec<JobSlot>,
    /// Jobs whose `JobCompleted` has not yet been processed. Checked
    /// after every event, so it must be O(1) — a fleet run cannot afford
    /// the former O(jobs) `is_done` scan per event.
    jobs_remaining: usize,
    /// Hadoop server ids (0..n), kept for streaming-mode materialization.
    server_ids: Vec<ServerId>,
    /// Pod (fat-tree) or rack (leaf fabrics) of every node; `u32::MAX`
    /// for core switches, which belong to no pod. Drives collector
    /// sharding and per-pod install batching.
    pod_of_node: Vec<u32>,
    pythia: Option<ShardedPythia>,
    /// The agent → collector management-network channel (Pythia only).
    mgmt: Option<MgmtNet>,
    hedera: Option<HederaScheduler>,
    /// Static CBR background per link (bits/sec) — what the link-load
    /// service would report net of Pythia's own shuffle traffic.
    background_bps: Vec<f64>,
    queue: EventQueue<Event>,
    /// The scheduled completion-probe event and the time it fires at, so
    /// an unchanged projection is left in place instead of the
    /// cancel-and-repush churn every round.
    flowcheck: Option<(EventId, SimTime)>,
    fetch_of_flow: BTreeMap<FlowId, (JobId, FetchId)>,
    info_of_fetch: BTreeMap<(JobId, FetchId), FetchInfo>,
    probe: NetFlowProbe,
    trace: FlowTrace,
    /// Per trunk direction group: (capacity, member CBR flow ids ordered
    /// like the group's links).
    bg_groups: Vec<BgGroup>,
    bg_rng: rand::rngs::SmallRng,
    /// Directed links currently down (both directions of failed cables).
    down_links: std::collections::HashSet<LinkId>,
    /// Original capacities, for restoration.
    orig_capacity: Vec<f64>,
    wire_seed: u64,
    events_processed: u64,
    rules_installed: u64,
    /// Rule installs rejected by a full TCAM (flow degraded to ECMP).
    tcam_rejected: u64,
    /// Fetches parked because no route existed at start time.
    parked_fetches: Vec<ParkedFetch>,
    /// Total unroutable-fetch parkings over the run.
    flows_unroutable: u64,
    /// Background CBR flows skipped at construction because their trunk
    /// entry formed no valid path. Construction-derived — a restore
    /// rebuilds it identically from the same config — so not persisted.
    background_flows_skipped: u64,
    /// When set, every control-plane message dispatched into the Pythia
    /// pipeline is appended here with its sim time — the stream a live
    /// daemon replays for the equivalence test. Observation only (never
    /// read back), so not persisted; tapped runs are not checkpointed.
    control_tap: Option<ControlTap>,
    /// The flight recorder (off unless the scenario enables it).
    flight: Trace,
    /// Whether the SDN controller is reachable.
    controller_up: bool,
    /// Start of the current outage, if one is in progress.
    controller_down_since: Option<SimTime>,
    /// Accumulated downtime over completed outage windows.
    controller_down_total: SimDuration,
    /// Controller crash events survived.
    controller_outages_seen: u64,
    /// Controller-connection epoch. Bumped on every crash; `RuleActive`
    /// events stamped with an older generation are dead (the install
    /// died with the connection) and skipped at dispatch.
    rule_generation: u64,
    net_dirty: bool,
    /// When the network first became dirty since the last solve (relaxed
    /// mode): bounds how long a deferred recompute may let stale rates
    /// ride.
    net_dirty_since: Option<SimTime>,
    /// Accumulated estimate of the relative rate error the deferred
    /// mutations have left behind (relaxed mode only): ~1/N per
    /// single-flow change among N concurrent fetches, 1.0 for structural
    /// shifts. A solve is forced once this crosses
    /// `cfg.relaxed_defer_frac`.
    net_dirty_weight: f64,
    /// Pair→path resolution memo (see [`CachedPath`]). Pythia installs
    /// pair-level rules and ECMP only consults the full 5-tuple where
    /// several equal-cost hops exist, so most resolutions are pair-pure
    /// and repeat across the many fetches of a server pair.
    path_cache: std::collections::HashMap<(NodeId, NodeId), CachedPath>,
    /// Bumped whenever default (ECMP) forwarding reconverges; invalidates
    /// the path cache alongside the dataplane rule epoch.
    routing_epoch: u64,
    /// Dispatch-loop scratch: flows completed by the pre-event advance.
    /// Owned by the engine so steady-state dispatch allocates nothing.
    completed_scratch: Vec<FlowId>,
    /// Dispatch-loop scratch for Hadoop event batches.
    hadoop_scratch: Vec<HadoopEvent>,
    /// Wave buffer: fetch starts of the Hadoop batch currently draining,
    /// deferred to one `start_fetch_wave` pass at the end of the batch.
    /// Always empty between events (checkpoints assert it), so it is
    /// scratch, not persisted state.
    wave_scratch: Vec<WaveFetch>,
    /// Relaxed mode: whether the completion projection may have moved
    /// since the last `finish_round_relaxed` peek. Any flow mutation or
    /// solve sets it; quiet rounds (the overwhelmingly common
    /// rule-activation ticks) skip the completion-heap peek entirely.
    /// Derived state — reset to `true` on restore, never persisted.
    projection_dirty: bool,
    /// Dispatch-loop scratch: in-flight flows a rule or link event must
    /// re-resolve.
    candidates_scratch: Vec<(FlowId, FiveTuple)>,
    /// In-flight fetch flows by server pair, each list in flow-id order.
    /// Lets `on_rule_active` re-resolve exactly the flows a server-pair
    /// rule can match instead of scanning every flow in the network.
    flows_of_pair: BTreeMap<(NodeId, NodeId), Vec<FlowId>>,
    /// Epoch-batched install buffers, keyed by pod of the target switch
    /// (`u32::MAX` = the shared core bucket). Empty unless
    /// `cfg.install_epoch` is set.
    epoch_buf: BTreeMap<u32, Vec<BufferedRule>>,
    /// Non-empty per-pod batches flushed over the run.
    epoch_batches: u64,
    /// Per-tenant rule accounting (index = job id): rules issued by the
    /// control plane, rules that landed in a TCAM, installs rejected by
    /// a full TCAM. System-attributed rules (resyncs, background
    /// re-placements) are counted in the engine-wide totals only.
    tenant_rules_issued: Vec<u64>,
    tenant_rules_installed: Vec<u64>,
    tenant_tcam_rejected: Vec<u64>,
}

impl<'a> Engine<'a> {
    fn new(
        job_specs: Vec<(pythia_hadoop::JobSpec, pythia_des::SimDuration)>,
        cfg: &'a ScenarioConfig,
    ) -> Engine<'a> {
        assert!(!job_specs.is_empty(), "need at least one job");
        let mr = cfg.topology.build();
        let rngs = RngFactory::new(cfg.seed);
        let mut net = FlowNet::new(mr.topology.clone());
        // Only server-sourced (shuffle) traffic is observed — the probe
        // watches servers and flow traces cover fetches only — so skip
        // per-advance byte integration for everything else (the CBR
        // background keeps its rates; its byte counters are never read).
        net.meter_sources_only(mr.servers.iter().copied());
        if cfg.relaxed_order {
            // Must precede the first start_flow: the accounting scheme is
            // fixed for the lifetime of the net.
            net.set_relaxed_order(true);
            net.set_solver_workers(solver_workers(cfg));
        }

        // Background load emulating over-subscription (§V-A): one CBR
        // stream per trunk cable, grouped by direction so the fluctuating
        // profile can redistribute load within each group.
        let bg = install_background_flows(
            &mut net,
            &mr.topology,
            background_flows(&mr.topology, &mr.trunk_links, cfg.oversubscription),
        );
        let background_bps = bg.background_bps;
        let bg_groups = bg.groups;
        let background_flows_skipped = bg.skipped;
        net.recompute();

        let flight = Trace::new(&cfg.trace);
        let dataplane = Dataplane::new(&mr.topology, cfg.tcam_capacity);
        let mut controller = Controller::with_clos(
            mr.topology.clone(),
            mr.clos.clone(),
            cfg.controller.clone(),
            &rngs,
        );
        controller.set_trace(flight.clone());
        let nexthops = EcmpNextHops::compute(&mr.topology);
        let ecmp = EcmpForwarding::new(pythia_des::splitmix64(cfg.seed ^ 0xec3b));

        let servers: Vec<ServerId> = (0..mr.servers.len() as u32).map(ServerId).collect();
        // Scenario-known shuffle size: at most one cross-network fetch per
        // (map, reducer) pair per job. Sizes the probe curve buffers.
        let total_fetches: usize = job_specs
            .iter()
            .map(|(s, _)| s.num_maps.saturating_mul(s.num_reducers))
            .sum();
        let jobs: Vec<JobSlot> = job_specs
            .into_iter()
            .enumerate()
            .map(|(i, (spec, offset))| {
                let name = spec.name.clone();
                // Streaming mode defers construction to the JobStart
                // event; the per-job RNG seed depends only on (scenario
                // seed, job index), so the deferred build is bit-identical
                // to the eager one.
                let (spec, sim) = if cfg.stream_jobs {
                    (Some(spec), None)
                } else {
                    (
                        None,
                        Some(MapReduceSim::new(
                            cfg.hadoop.clone(),
                            spec,
                            servers.clone(),
                            &RngFactory::new(pythia_des::splitmix64(cfg.seed ^ (i as u64) << 17)),
                        )),
                    )
                };
                JobSlot {
                    spec,
                    sim,
                    timeline: None,
                    name,
                    start_at: SimTime::ZERO + offset,
                    started: false,
                    done: false,
                }
            })
            .collect();
        let jobs_remaining = jobs.len();

        // Pod (or rack) of every node: the locality domain collector
        // sharding and per-pod install batching key on. Shared with the
        // daemon's service core — both sides must agree byte for byte.
        let pod_of_node = service::pod_of_nodes(&mr);
        let pod_of_server: Vec<u32> = mr
            .servers
            .iter()
            .map(|&n| pod_of_node[n.0 as usize])
            .collect();

        let pythia = match cfg.scheduler {
            SchedulerKind::Pythia => {
                let mut py = ShardedPythia::new(
                    cfg.pythia.clone(),
                    &mr.topology,
                    mr.servers.clone(),
                    pod_of_server,
                    cfg.collector_shards,
                );
                py.set_trace(flight.clone());
                // Seed the residual table with the static CBR background.
                py.set_background_from(&background_bps);
                Some(py)
            }
            _ => None,
        };
        let mgmt = match cfg.scheduler {
            SchedulerKind::Pythia => Some(MgmtNet::new(
                cfg.pythia.mgmtnet.clone(),
                rngs.stream("mgmtnet"),
            )),
            _ => None,
        };
        let hedera = match cfg.scheduler {
            SchedulerKind::Hedera => Some(HederaScheduler::new(cfg.hedera.clone())),
            _ => None,
        };

        let mut probe = NetFlowProbe::new(mr.servers.clone());
        // Pre-size each curve from the known fetch count: delta-encoded
        // pushes retain at most one point per completion wave a node
        // sources (fetches spread ~evenly across servers) plus the
        // periodic ticks — so steady-state sampling never reallocates
        // (pinned by the counting-allocator guard).
        probe.reserve(total_fetches / mr.servers.len().max(1) + 64);
        let n_jobs_total = jobs.len();

        Engine {
            cfg,
            net,
            dataplane,
            controller,
            nexthops,
            ecmp,
            jobs,
            jobs_remaining,
            server_ids: servers,
            pod_of_node,
            pythia,
            mgmt,
            hedera,
            background_bps,
            queue: EventQueue::new(),
            flowcheck: None,
            fetch_of_flow: BTreeMap::new(),
            info_of_fetch: BTreeMap::new(),
            probe,
            trace: FlowTrace::default(),
            bg_groups,
            bg_rng: rngs.stream("background-fluctuation"),
            down_links: std::collections::HashSet::new(),
            orig_capacity: (0..mr.topology.num_links())
                .map(|l| mr.topology.link(LinkId(l as u32)).capacity_bps)
                .collect(),
            wire_seed: pythia_des::splitmix64(cfg.seed ^ 0x31f3),
            events_processed: 0,
            rules_installed: 0,
            tcam_rejected: 0,
            parked_fetches: Vec::new(),
            flows_unroutable: 0,
            background_flows_skipped,
            control_tap: None,
            flight,
            controller_up: true,
            controller_down_since: None,
            controller_down_total: SimDuration::ZERO,
            controller_outages_seen: 0,
            rule_generation: 0,
            net_dirty: false,
            net_dirty_since: None,
            net_dirty_weight: 0.0,
            path_cache: std::collections::HashMap::new(),
            routing_epoch: 0,
            completed_scratch: Vec::new(),
            hadoop_scratch: Vec::new(),
            wave_scratch: Vec::new(),
            projection_dirty: true,
            candidates_scratch: Vec::new(),
            flows_of_pair: BTreeMap::new(),
            epoch_buf: BTreeMap::new(),
            epoch_batches: 0,
            tenant_rules_issued: vec![0; n_jobs_total],
            tenant_rules_installed: vec![0; n_jobs_total],
            tenant_tcam_rejected: vec![0; n_jobs_total],
            mr,
        }
    }

    /// O(1): the per-event completion check (this runs after *every*
    /// dispatched event — an O(jobs) scan here capped fleet throughput).
    fn all_done(&self) -> bool {
        self.jobs_remaining == 0
    }

    /// The live simulator of job `j`. Panics if the job has not been
    /// materialized yet or already retired — the per-job events the
    /// engine dispatches only exist while the simulator does.
    fn sim_mut(&mut self, j: JobId) -> &mut MapReduceSim {
        self.jobs[j.0 as usize]
            .sim
            .as_mut()
            .expect("event for a job with no live simulator")
    }

    fn node_of(&self, s: ServerId) -> NodeId {
        self.mr.servers[s.0 as usize]
    }

    fn run(mut self) -> MultiRunReport {
        self.kickoff();
        match self.run_loop(None, None) {
            Ok(LoopOutcome::Done(report)) => *report,
            // With no checkpoint policy and no capture point the loop can
            // neither fail nor stop early.
            Ok(LoopOutcome::Captured(..)) | Err(_) => unreachable!("plain run cannot checkpoint"),
        }
    }

    fn kickoff(&mut self) {
        // Kick off: periodic samplers, Hedera ticks, the job itself.
        self.probe.sample(&self.net);
        self.queue
            .push(SimTime::ZERO + self.cfg.probe_period, Event::ProbeSample);
        self.queue.push(
            SimTime::ZERO + self.cfg.link_load_period,
            Event::LinkLoadSample,
        );
        if self.hedera.is_some() {
            self.queue
                .push(SimTime::ZERO + self.cfg.hedera.period, Event::HederaTick);
        }
        for fault in &self.cfg.link_faults {
            self.queue.push(
                SimTime::ZERO + fault.fail_at,
                Event::LinkState {
                    trunk_cable: fault.trunk_cable,
                    up: false,
                },
            );
            if let Some(at) = fault.restore_at {
                self.queue.push(
                    SimTime::ZERO + at,
                    Event::LinkState {
                        trunk_cable: fault.trunk_cable,
                        up: true,
                    },
                );
            }
        }
        for o in &self.cfg.controller_outages {
            self.queue.push(
                SimTime::ZERO + o.down_at,
                Event::ControllerState { up: false },
            );
            self.queue
                .push(SimTime::ZERO + o.up_at, Event::ControllerState { up: true });
        }
        for &at in &self.cfg.agent_respill_at {
            self.queue.push(SimTime::ZERO + at, Event::AgentRespill);
        }
        if self.pythia.is_some() {
            if let Some(ttl) = self.cfg.pythia.parked_ttl {
                self.queue.push(SimTime::ZERO + ttl, Event::ParkedSweep);
            }
            if let Some(epoch) = self.cfg.install_epoch {
                self.queue.push(SimTime::ZERO + epoch, Event::EpochFlush);
            }
        }
        if let BackgroundProfile::Fluctuating { .. } = self.cfg.background {
            if !self.bg_groups.is_empty() {
                // First draw at t=0 so runs start asymmetric already.
                self.on_background_change(SimTime::ZERO);
            }
        }
        for i in 0..self.jobs.len() {
            let job = JobId(i as u32);
            let at = self.jobs[i].start_at;
            self.queue.push(at, Event::JobStart(job));
        }
        self.finish_round(SimTime::ZERO);
    }

    fn run_loop(
        mut self,
        mut checkpoint: Option<CheckpointRuntime<'_>>,
        capture_at: Option<u64>,
    ) -> Result<LoopOutcome, SnapshotError> {
        while let Some((now, _, ev)) = self.queue.pop() {
            // Installs issued before a controller crash died with the
            // connection: drop them before they count as processed, the
            // same way a lazily-cancelled queue entry never surfaces.
            if let Event::RuleActive { generation, .. } = ev {
                if generation != self.rule_generation {
                    continue;
                }
            }
            if let Some(cp) = checkpoint.as_ref() {
                if cp.policy.die_at_event == Some(self.events_processed + 1) {
                    // Crash injection: die with no unwinding, exactly as
                    // a `kill -9` landing mid-dispatch would.
                    std::process::abort();
                }
            }
            self.flight.set_now(now);
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.cfg.max_events,
                "watchdog: event budget exhausted ({})",
                self.cfg.max_events
            );
            assert!(
                now.saturating_since(SimTime::ZERO) <= self.cfg.max_sim_time,
                "watchdog: simulated time budget exhausted at {now}"
            );
            // 1. Integrate the network up to now; handle completions.
            {
                let _span = self.flight.span("ev_advance_net");
                let mut completed = std::mem::take(&mut self.completed_scratch);
                completed.clear();
                completed.extend_from_slice(self.net.advance_to(now));
                let any_completed = !completed.is_empty();
                for &fid in &completed {
                    self.on_flow_complete(now, fid);
                }
                completed.clear();
                self.completed_scratch = completed;
                // Crisp measured curves, one sweep per completion batch:
                // every counter is already integrated to `now` before the
                // first completion processes, and neither flow removal nor
                // the follow-up fetch starts move a cum-tx counter, so the
                // k per-completion sweeps this replaces all read identical
                // values — one sweep records the same curves. Relaxed mode
                // touches only each completing flow's own source curve
                // (inside `on_flow_complete`); every other watched counter
                // is analytic and read at the next periodic tick.
                if any_completed && !self.net.relaxed_order() {
                    self.probe.sample(&self.net);
                }
            }
            // 2. The event itself, timed per handler so the span
            // histograms attribute dispatch cost by event type.
            let span = self.flight.span(event_span_name(&ev));
            match ev {
                Event::JobStart(j) => {
                    let slot = &mut self.jobs[j.0 as usize];
                    debug_assert!(!slot.started);
                    slot.started = true;
                    // Streaming mode: the job enters the loop here — the
                    // simulator is built on arrival, not at engine
                    // construction, with the same (seed, index) RNG.
                    if let Some(spec) = slot.spec.take() {
                        slot.sim = Some(MapReduceSim::new(
                            self.cfg.hadoop.clone(),
                            spec,
                            self.server_ids.clone(),
                            &RngFactory::new(pythia_des::splitmix64(
                                self.cfg.seed ^ (j.0 as u64) << 17,
                            )),
                        ));
                    }
                    let mut evts = std::mem::take(&mut self.hadoop_scratch);
                    self.sim_mut(j).start_into(now, &mut evts);
                    self.apply_hadoop_events(now, j, &mut evts);
                    self.hadoop_scratch = evts;
                }
                Event::MapFinish(j, m) => {
                    self.flight
                        .record(Component::Hadoop, || TraceEvent::MapFinish {
                            job: j,
                            map: m,
                        });
                    let mut evts = std::mem::take(&mut self.hadoop_scratch);
                    self.sim_mut(j).map_finished_into(now, m, &mut evts);
                    self.apply_hadoop_events(now, j, &mut evts);
                    self.hadoop_scratch = evts;
                }
                Event::ReducerStart(j, r) => {
                    let mut evts = std::mem::take(&mut self.hadoop_scratch);
                    self.sim_mut(j).reducer_started_into(now, r, &mut evts);
                    self.apply_hadoop_events(now, j, &mut evts);
                    self.hadoop_scratch = evts;
                }
                Event::SortFinish(j, r) => {
                    let mut evts = std::mem::take(&mut self.hadoop_scratch);
                    self.sim_mut(j).sort_finished_into(now, r, &mut evts);
                    self.apply_hadoop_events(now, j, &mut evts);
                    self.hadoop_scratch = evts;
                }
                Event::ReducerFinish(j, r) => {
                    let mut evts = std::mem::take(&mut self.hadoop_scratch);
                    self.sim_mut(j).reducer_finished_into(now, r, &mut evts);
                    self.apply_hadoop_events(now, j, &mut evts);
                    self.hadoop_scratch = evts;
                }
                Event::FlowCheck => {
                    // Work done by the advance above. Clearing the handle
                    // changes what the relaxed round-finish must compare
                    // against, so the projection must be re-peeked even if
                    // the advance completed nothing (a lazily-stale check).
                    self.flowcheck = None;
                    self.projection_dirty = true;
                }
                Event::PredictionDeliver(msg) => {
                    self.control(now, ControlMsg::Prediction(msg));
                }
                Event::RuleActive {
                    switch,
                    rule,
                    tenant,
                    ..
                } => self.on_rule_active(switch, rule, tenant),
                Event::EpochFlush => self.on_epoch_flush(now),
                Event::HederaTick => self.on_hedera_tick(now),
                Event::LinkLoadSample => self.on_link_load_sample(now),
                Event::ProbeSample => {
                    self.probe.sample(&self.net);
                    if !self.all_done() {
                        self.queue
                            .push(now + self.cfg.probe_period, Event::ProbeSample);
                    }
                }
                Event::BackgroundChange => self.on_background_change(now),
                Event::LinkState { trunk_cable, up } => self.on_link_state(now, trunk_cable, up),
                Event::ControllerState { up } => self.on_controller_state(now, up),
                Event::AgentRespill => self.on_agent_respill(now),
                Event::ParkedSweep => self.on_parked_sweep(now),
            }
            drop(span);
            if self.all_done() {
                // Final probe point at job end, then stop: only unbounded
                // background flows remain.
                if self.net_dirty {
                    self.net.recompute();
                }
                self.probe.sample(&self.net);
                break;
            }
            self.finish_round(now);
            // Checkpoints land here — after the event's effects and the
            // rate solve — so the snapshot is of a settled simulation.
            if let Some(cp) = checkpoint.as_mut() {
                if cp.due(self.events_processed, now) {
                    self.write_checkpoint(now, cp)?;
                }
            }
            if capture_at.is_some_and(|n| self.events_processed >= n) {
                return Ok(LoopOutcome::Captured(self.snapshot_bytes(now)));
            }
        }

        assert!(
            self.all_done(),
            "event queue drained before job completion — lost event?"
        );
        Ok(LoopOutcome::Done(Box::new(self.build_report())))
    }

    /// Serialize the whole engine — queue, network, dataplane, controller,
    /// every job's Hadoop state, and the scheduler under test — into one
    /// versioned snapshot. `now` is the checkpoint instant (the time of
    /// the event just dispatched).
    ///
    /// Relaxed mode settles any deferred rate solve first (a solve is
    /// always legal, and [`pythia_netsim::FlowNet`] refuses to serialize
    /// stale rates). The exact path is already solved at every checkpoint
    /// site and recomputes nothing, so a checkpointing run stays
    /// byte-identical to an uncheckpointed one.
    fn snapshot_bytes(&mut self, now: SimTime) -> Vec<u8> {
        // Checkpoints land between events, and every Hadoop batch drains
        // its fetch wave before its handler returns — a wave is never
        // in flight here, so the buffer is scratch, not state.
        debug_assert!(
            self.wave_scratch.is_empty(),
            "checkpoint with a fetch wave in flight"
        );
        self.sync_rates_for_read();
        let _span = self.flight.span("checkpoint");
        let mut w = Writer::new();
        w.section("engine", |s| {
            now.put(s);
            self.events_processed.put(s);
            self.rules_installed.put(s);
            self.tcam_rejected.put(s);
            self.flows_unroutable.put(s);
            self.rule_generation.put(s);
            self.controller_up.put(s);
            self.controller_down_since.put(s);
            self.controller_down_total.put(s);
            self.controller_outages_seen.put(s);
            self.flowcheck.put(s);
            self.background_bps.put(s);
            // The down set is unordered in memory; serialize sorted so
            // identical states write identical bytes.
            let mut down: Vec<LinkId> = self.down_links.iter().copied().collect();
            down.sort_unstable();
            down.put(s);
            self.parked_fetches.put(s);
            self.fetch_of_flow.put(s);
            self.info_of_fetch.put(s);
            pythia_des::put_rng(s, &self.bg_rng);
            self.epoch_batches.put(s);
            self.epoch_buf.put(s);
            self.tenant_rules_issued.put(s);
            self.tenant_rules_installed.put(s);
            self.tenant_tcam_rejected.put(s);
        });
        w.section("queue", |s| {
            self.queue.next_seq().put(s);
            let entries = self.queue.live_entries();
            (entries.len() as u64).put(s);
            for (t, seq, ev) in entries {
                t.put(s);
                seq.put(s);
                ev.put(s);
            }
        });
        w.section("net", |s| self.net.put_state(s));
        w.section("dataplane", |s| self.dataplane.put_state(s));
        w.section("controller", |s| self.controller.put_state(s));
        w.section("jobs", |s| {
            (self.jobs.len() as u64).put(s);
            for j in &self.jobs {
                j.name.put(s);
                j.start_at.put(s);
                j.started.put(s);
                // Slot state tag: 0 = pending (streaming, not started),
                // 1 = live simulator, 2 = retired (timeline only).
                match (&j.sim, &j.timeline) {
                    (Some(sim), _) => {
                        1u8.put(s);
                        sim.put_state(s);
                    }
                    (None, Some(tl)) => {
                        2u8.put(s);
                        tl.put(s);
                    }
                    (None, None) => 0u8.put(s),
                }
            }
        });
        if let Some(py) = &self.pythia {
            w.section("pythia", |s| py.put_state(s));
        }
        if let Some(m) = &self.mgmt {
            w.section("mgmt", |s| m.put_state(s));
        }
        if let Some(h) = &self.hedera {
            w.section("hedera", |s| h.put_state(s));
        }
        w.section("probe", |s| self.probe.put(s));
        w.section("flowtrace", |s| self.trace.put(s));
        w.finish()
    }

    /// Write one checkpoint: snapshot bytes, atomic snapshot file, then
    /// the manifest — in that order, so the manifest never names a file
    /// that is not fully on disk.
    fn write_checkpoint(
        &mut self,
        now: SimTime,
        cp: &mut CheckpointRuntime<'_>,
    ) -> Result<(), SnapshotError> {
        let bytes = self.snapshot_bytes(now);
        let file = format!("snap-{:012}.pysnap", self.events_processed);
        let manifest = Manifest {
            snapshot_file: file.clone(),
            version: SNAPSHOT_VERSION,
            config_hash: cp.cfg_hash,
            events: self.events_processed,
            sim_nanos: now.as_nanos(),
            bytes: bytes.len() as u64,
            crc32: crc32(&bytes),
        };
        store_checkpoint(&cp.policy.dir, &manifest, &bytes)?;
        if !cp.policy.retain_all {
            if let Some(prev) = cp.last_file.take() {
                if prev != file {
                    // Best-effort: a leftover old snapshot is harmless —
                    // the manifest no longer points at it.
                    let _ = std::fs::remove_file(cp.policy.dir.join(prev));
                }
            }
        }
        cp.last_file = Some(file);
        cp.events_at_last = self.events_processed;
        cp.next_sim = cp.policy.every_sim_time.map(|d| now + d);
        Ok(())
    }

    /// Overlay a snapshot onto this freshly constructed engine. Every
    /// cross-reference is validated against the running scenario — a
    /// snapshot from a different cluster, job list, or solver mode is a
    /// typed error, never a panic. On error the engine is in a partially
    /// restored state and must be discarded (every caller does).
    ///
    /// With `fork`, the queued chaos events (link faults, controller
    /// outages, agent respills) are dropped and re-scheduled from this
    /// engine's configuration; each must lie strictly after the snapshot
    /// instant.
    ///
    /// Returns the snapshot instant.
    fn restore_from_bytes(&mut self, bytes: &[u8], fork: bool) -> Result<SimTime, SnapshotError> {
        let n_links = self.mr.topology.num_links();
        let n_nodes = self.mr.topology.num_nodes();
        let n_servers = self.mr.servers.len();
        let n_jobs = self.jobs.len();
        let n_cables = self.mr.trunk_links.len() / 2;
        let malformed = |section: &str, detail: String| SnapshotError::Malformed {
            section: section.into(),
            detail,
        };

        let mut rd = Reader::new(bytes)?;
        let mut s = rd.section("engine")?;
        let now = SimTime::get(&mut s)?;
        let events_processed = u64::get(&mut s)?;
        let rules_installed = u64::get(&mut s)?;
        let tcam_rejected = u64::get(&mut s)?;
        let flows_unroutable = u64::get(&mut s)?;
        let rule_generation = u64::get(&mut s)?;
        let controller_up = bool::get(&mut s)?;
        let controller_down_since = Option::<SimTime>::get(&mut s)?;
        let controller_down_total = SimDuration::get(&mut s)?;
        let controller_outages_seen = u64::get(&mut s)?;
        let flowcheck = Option::<(EventId, SimTime)>::get(&mut s)?;
        let background_bps = Vec::<f64>::get(&mut s)?;
        if background_bps.len() != n_links {
            return Err(s.malformed(format!(
                "background table covers {} links, topology has {n_links}",
                background_bps.len()
            )));
        }
        for (i, &b) in background_bps.iter().enumerate() {
            if !b.is_finite() || b < 0.0 {
                return Err(s.malformed(format!("background load {b} on link {i} invalid")));
            }
        }
        let down_vec = Vec::<LinkId>::get(&mut s)?;
        for win in down_vec.windows(2) {
            if win[1] <= win[0] {
                return Err(s.malformed("down-link list not strictly ascending".to_string()));
            }
        }
        if let Some(l) = down_vec.iter().find(|l| l.0 as usize >= n_links) {
            return Err(s.malformed(format!("down link {} out of range", l.0)));
        }
        let parked_fetches = Vec::<ParkedFetch>::get(&mut s)?;
        for p in &parked_fetches {
            if p.job.0 as usize >= n_jobs
                || p.src.0 as usize >= n_servers
                || p.dst.0 as usize >= n_servers
            {
                return Err(s.malformed(format!(
                    "parked fetch references job {} / servers {},{} outside the scenario",
                    p.job.0, p.src.0, p.dst.0
                )));
            }
        }
        let fetch_of_flow = <BTreeMap<FlowId, (JobId, FetchId)> as Persist>::get(&mut s)?;
        let info_of_fetch = <BTreeMap<(JobId, FetchId), FetchInfo> as Persist>::get(&mut s)?;
        if info_of_fetch.len() != fetch_of_flow.len() {
            return Err(s.malformed(format!(
                "{} in-flight flows but {} fetch records",
                fetch_of_flow.len(),
                info_of_fetch.len()
            )));
        }
        {
            let mut seen = std::collections::BTreeSet::new();
            for &(job, fetch) in fetch_of_flow.values() {
                if job.0 as usize >= n_jobs {
                    return Err(s.malformed(format!("in-flight job {} out of range", job.0)));
                }
                if !info_of_fetch.contains_key(&(job, fetch)) || !seen.insert((job, fetch)) {
                    return Err(s.malformed(format!(
                        "in-flight fetch ({}, {}) has no unique fetch record",
                        job.0, fetch.0
                    )));
                }
            }
        }
        for info in info_of_fetch.values() {
            if info.src.0 as usize >= n_servers || info.dst.0 as usize >= n_servers {
                return Err(s.malformed(format!(
                    "fetch record references servers {},{} outside the scenario",
                    info.src.0, info.dst.0
                )));
            }
        }
        let bg_rng = pythia_des::get_rng(&mut s)?;
        let epoch_batches = u64::get(&mut s)?;
        let epoch_buf = <BTreeMap<u32, Vec<BufferedRule>> as Persist>::get(&mut s)?;
        for rules in epoch_buf.values() {
            for b in rules {
                if b.switch.0 as usize >= n_nodes {
                    return Err(
                        s.malformed(format!("buffered rule switch {} out of range", b.switch.0))
                    );
                }
                if b.tenant != SYSTEM_TENANT && b.tenant as usize >= n_jobs {
                    return Err(
                        s.malformed(format!("buffered rule tenant {} out of range", b.tenant))
                    );
                }
            }
        }
        let tenant_rules_issued = Vec::<u64>::get(&mut s)?;
        let tenant_rules_installed = Vec::<u64>::get(&mut s)?;
        let tenant_tcam_rejected = Vec::<u64>::get(&mut s)?;
        for (what, v) in [
            ("issued", &tenant_rules_issued),
            ("installed", &tenant_rules_installed),
            ("tcam-rejected", &tenant_tcam_rejected),
        ] {
            if v.len() != n_jobs {
                return Err(s.malformed(format!(
                    "tenant {what} table covers {} jobs, scenario has {n_jobs}",
                    v.len()
                )));
            }
        }
        s.finish()?;

        let mut s = rd.section("queue")?;
        let next_seq = u64::get(&mut s)?;
        let n_events = u64::get(&mut s)? as usize;
        if n_events > s.remaining() {
            return Err(s.malformed("event count exceeds section size".to_string()));
        }
        let mut entries: Vec<(SimTime, u64, Event)> = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let t = SimTime::get(&mut s)?;
            let seq = u64::get(&mut s)?;
            let ev = Event::get(&mut s)?;
            validate_event(&ev, n_jobs, n_nodes, n_links, n_servers, n_cables)
                .map_err(|d| s.malformed(d))?;
            entries.push((t, seq, ev));
        }
        s.finish()?;
        if fork {
            entries.retain(|(_, _, ev)| {
                !matches!(
                    ev,
                    Event::LinkState { .. } | Event::ControllerState { .. } | Event::AgentRespill
                )
            });
        }
        // The flowcheck handle must agree with the queue: exactly one
        // live FlowCheck at its recorded time when armed, none otherwise.
        let flowchecks: Vec<SimTime> = entries
            .iter()
            .filter(|(_, _, ev)| matches!(ev, Event::FlowCheck))
            .map(|&(t, _, _)| t)
            .collect();
        match flowcheck {
            Some((_, t)) if flowchecks != vec![t] => {
                return Err(malformed(
                    "queue",
                    format!("completion probe armed at {t} but queue disagrees"),
                ));
            }
            None if !flowchecks.is_empty() => {
                return Err(malformed(
                    "queue",
                    "completion probe queued but not armed".to_string(),
                ));
            }
            _ => {}
        }
        let mut queue =
            EventQueue::from_entries(entries, next_seq).map_err(|d| malformed("queue", d))?;

        let mut s = rd.section("net")?;
        let mut net = FlowNet::get_state(self.mr.topology.clone(), &mut s)?;
        s.finish()?;
        if net.relaxed_order() != self.cfg.relaxed_order {
            return Err(malformed(
                "net",
                format!(
                    "snapshot used the {} rate solver, the scenario uses the {} one",
                    if net.relaxed_order() {
                        "relaxed-order"
                    } else {
                        "exact"
                    },
                    if self.cfg.relaxed_order {
                        "relaxed-order"
                    } else {
                        "exact"
                    },
                ),
            ));
        }
        if self.cfg.relaxed_order {
            // The worker pool is a runtime resource, not state.
            net.set_solver_workers(solver_workers(self.cfg));
        }
        for fid in fetch_of_flow.keys() {
            if net.flow(*fid).is_none() {
                return Err(malformed(
                    "net",
                    format!("in-flight fetch flow {fid} missing from the network"),
                ));
            }
        }
        // The background groups are rebuilt from configuration (same
        // deterministic construction order, so the same flow ids); the
        // snapshot must actually contain those CBR flows.
        for (_, members) in &self.bg_groups {
            for &(_, fid) in members {
                let ok = net
                    .flow(fid)
                    .is_some_and(|f| matches!(f.spec.kind, pythia_netsim::FlowKind::Cbr { .. }));
                if !ok {
                    return Err(malformed(
                        "net",
                        format!("background flow {fid} missing from the network"),
                    ));
                }
            }
        }

        let mut s = rd.section("dataplane")?;
        let dataplane = Dataplane::get_state(&self.mr.topology, &mut s)?;
        s.finish()?;

        let mut s = rd.section("controller")?;
        self.controller.restore_state(&mut s)?;
        s.finish()?;

        let mut s = rd.section("jobs")?;
        let n = u64::get(&mut s)? as usize;
        if n != n_jobs {
            return Err(s.malformed(format!("snapshot has {n} jobs, scenario has {n_jobs}")));
        }
        let cfg_hadoop = self.cfg.hadoop.clone();
        let cfg_seed = self.cfg.seed;
        let server_ids = self.server_ids.clone();
        for (i, slot) in self.jobs.iter_mut().enumerate() {
            let name = String::get(&mut s)?;
            if name != slot.name {
                return Err(SnapshotError::Malformed {
                    section: "jobs".into(),
                    detail: format!("snapshot job `{name}`, scenario job `{}`", slot.name),
                });
            }
            let start_at = SimTime::get(&mut s)?;
            if start_at != slot.start_at {
                return Err(SnapshotError::Malformed {
                    section: "jobs".into(),
                    detail: format!(
                        "job `{name}` starts at {start_at} in the snapshot, {} in the scenario",
                        slot.start_at
                    ),
                });
            }
            slot.started = bool::get(&mut s)?;
            match u8::get(&mut s)? {
                // Pending (streaming): the fresh slot already holds the
                // spec; nothing was serialized.
                0 => {
                    if slot.spec.is_none() && slot.sim.is_none() {
                        return Err(s.malformed(format!(
                            "job `{name}` is pending in the snapshot but the scenario \
                             does not stream jobs"
                        )));
                    }
                    slot.done = false;
                }
                // Live simulator. A streaming-mode fresh engine has not
                // materialized it yet: build it exactly as JobStart would
                // (same seed derivation), then overlay the state.
                1 => {
                    if slot.sim.is_none() {
                        let spec = slot
                            .spec
                            .take()
                            .ok_or_else(|| s.malformed(format!("job `{name}` restored twice")))?;
                        slot.sim = Some(MapReduceSim::new(
                            cfg_hadoop.clone(),
                            spec,
                            server_ids.clone(),
                            &RngFactory::new(pythia_des::splitmix64(cfg_seed ^ (i as u64) << 17)),
                        ));
                    }
                    let sim = slot.sim.as_mut().expect("just materialized");
                    sim.restore_state(&mut s)?;
                    slot.done = sim.is_done();
                    slot.timeline = None;
                }
                // Retired (streaming): only the timeline survives.
                2 => {
                    slot.spec = None;
                    slot.sim = None;
                    slot.timeline = Some(pythia_hadoop::Timeline::get(&mut s)?);
                    slot.done = true;
                }
                t => {
                    return Err(s.malformed(format!("unknown job-slot state tag {t}")));
                }
            }
        }
        s.finish()?;
        self.jobs_remaining = self.jobs.iter().filter(|j| !j.done).count();

        if let Some(mut py) = self.pythia.take() {
            let mut s = rd.section("pythia")?;
            py.restore_state(&self.mr.topology, &mut s)?;
            s.finish()?;
            self.pythia = Some(py);
        }
        if let Some(m) = self.mgmt.as_mut() {
            let mut s = rd.section("mgmt")?;
            m.restore_state(&mut s)?;
            s.finish()?;
        }
        if let Some(h) = self.hedera.as_mut() {
            let mut s = rd.section("hedera")?;
            h.restore_state(&mut s)?;
            s.finish()?;
        }
        let mut s = rd.section("probe")?;
        let probe = NetFlowProbe::get(&mut s)?;
        s.finish()?;
        let mut s = rd.section("flowtrace")?;
        let trace = FlowTrace::get(&mut s)?;
        s.finish()?;
        if !rd.at_end() {
            return Err(malformed(
                "trailer",
                "trailing bytes after the final section".to_string(),
            ));
        }

        if fork {
            self.push_fork_chaos(&mut queue, now)?;
        }

        // Commit. From here on the engine *is* the snapshot.
        self.queue = queue;
        self.flowcheck = flowcheck;
        self.net = net;
        self.dataplane = dataplane;
        self.probe = probe;
        self.trace = trace;
        self.bg_rng = bg_rng;
        self.background_bps = background_bps;
        self.down_links = down_vec.into_iter().collect();
        self.parked_fetches = parked_fetches;
        self.fetch_of_flow = fetch_of_flow;
        self.info_of_fetch = info_of_fetch;
        self.events_processed = events_processed;
        self.rules_installed = rules_installed;
        self.tcam_rejected = tcam_rejected;
        self.flows_unroutable = flows_unroutable;
        self.epoch_batches = epoch_batches;
        self.epoch_buf = epoch_buf;
        self.tenant_rules_issued = tenant_rules_issued;
        self.tenant_rules_installed = tenant_rules_installed;
        self.tenant_tcam_rejected = tenant_tcam_rejected;
        self.rule_generation = rule_generation;
        self.controller_up = controller_up;
        self.controller_down_since = controller_down_since;
        self.controller_down_total = controller_down_total;
        self.controller_outages_seen = controller_outages_seen;
        // The network was solved when serialized; the resolution memo is
        // cold but provably reconstructible (it is only a cache); default
        // forwarding reconverges from the restored down set.
        self.net_dirty = false;
        self.net_dirty_since = None;
        self.net_dirty_weight = 0.0;
        // Derived, not persisted: force one fresh projection peek. The
        // restored flowcheck already matches the solved heap, so the peek
        // is a no-op match — byte-identical resume.
        self.projection_dirty = true;
        self.wave_scratch.clear();
        self.path_cache.clear();
        self.routing_epoch = 0;
        self.nexthops = EcmpNextHops::compute_avoiding(&self.mr.topology, &self.down_links);
        self.flows_of_pair.clear();
        for &fid in self.fetch_of_flow.keys() {
            let f = self.net.flow(fid).expect("validated above");
            // BTreeMap iteration is ascending, so each pair list comes
            // out in flow-id order, matching the live engine's invariant.
            self.flows_of_pair
                .entry((f.spec.tuple.src, f.spec.tuple.dst))
                .or_default()
                .push(fid);
        }

        // Resume-safety cross-check: restoring must be a fixed point of
        // snapshotting. Any ambient state that failed to round-trip —
        // a missed field, an order-scrambling container — shows up here
        // as a byte difference, in debug builds, on every resume.
        #[cfg(debug_assertions)]
        if !fork {
            let again = self.snapshot_bytes(now);
            assert!(
                again == bytes,
                "snapshot → restore → snapshot is not byte-identical \
                 ({} vs {} bytes)",
                again.len(),
                bytes.len()
            );
        }
        Ok(now)
    }

    /// Schedule this configuration's chaos events onto a forked queue.
    /// Each must lie strictly after the fork instant `now` — chaos in the
    /// shared warm-up cannot be re-written after the fact.
    fn push_fork_chaos(
        &self,
        queue: &mut EventQueue<Event>,
        now: SimTime,
    ) -> Result<(), SnapshotError> {
        let n_cables = self.mr.trunk_links.len() / 2;
        let after = |what: &str, at: SimTime| -> Result<SimTime, SnapshotError> {
            if at <= now {
                return Err(SnapshotError::Fork {
                    detail: format!("{what} at {at} is not after the fork point {now}"),
                });
            }
            Ok(at)
        };
        for (i, f) in self.cfg.link_faults.iter().enumerate() {
            if f.trunk_cable >= n_cables {
                return Err(SnapshotError::Fork {
                    detail: format!(
                        "link fault #{i} names trunk cable {} of {n_cables}",
                        f.trunk_cable
                    ),
                });
            }
            queue.push(
                after("link fault", SimTime::ZERO + f.fail_at)?,
                Event::LinkState {
                    trunk_cable: f.trunk_cable,
                    up: false,
                },
            );
            if let Some(at) = f.restore_at {
                queue.push(
                    after("link restore", SimTime::ZERO + at)?,
                    Event::LinkState {
                        trunk_cable: f.trunk_cable,
                        up: true,
                    },
                );
            }
        }
        for o in &self.cfg.controller_outages {
            queue.push(
                after("controller outage", SimTime::ZERO + o.down_at)?,
                Event::ControllerState { up: false },
            );
            queue.push(
                after("controller recovery", SimTime::ZERO + o.up_at)?,
                Event::ControllerState { up: true },
            );
        }
        for &at in &self.cfg.agent_respill_at {
            queue.push(
                after("agent respill", SimTime::ZERO + at)?,
                Event::AgentRespill,
            );
        }
        Ok(())
    }

    /// Recompute rates and reschedule the completion probe after any flow
    /// mutation.
    fn finish_round(&mut self, now: SimTime) {
        let _span = self.flight.span("finish_round");
        if self.net.relaxed_order() {
            self.finish_round_relaxed(now);
            return;
        }
        if self.net_dirty {
            {
                let _span = self.flight.span("net_recompute");
                self.net.recompute();
            }
            self.net_dirty = false;
            self.net_dirty_weight = 0.0;
            if let Some((h, _)) = self.flowcheck.take() {
                self.queue.cancel(h);
            }
            let _span = self.flight.span("net_next_completion");
            if let Some((t, _)) = self.net.next_completion() {
                self.flowcheck = Some((self.queue.push(t, Event::FlowCheck), t));
            }
        } else if self.flowcheck.is_none() {
            let _span = self.flight.span("net_next_completion");
            if let Some((t, _)) = self.net.next_completion() {
                self.flowcheck = Some((self.queue.push(t, Event::FlowCheck), t));
            }
        }
    }

    /// Relaxed-mode round finish. Two deviations from the exact path,
    /// both invisible within the documented tolerance: the rate solve is
    /// deferred while the staleness it would leave behind (next event
    /// time minus first-dirty time) stays under the deferral budget,
    /// collapsing bursts of rule installs into one solve; and the
    /// completion probe is rescheduled only when its projection actually
    /// moved, eliminating the cancel-and-repush churn every round.
    ///
    /// The budget is perturbation-weighted, not purely time-based: each
    /// deferred mutation carries an estimate of the relative rate error
    /// it leaves behind (removing or adding one of N fair-sharing
    /// transfers shifts its neighbors' rates by ~1/N; a background
    /// redraw or link fault reshapes everything and weighs 1.0), and the
    /// solve fires once the accumulated weight crosses
    /// `cfg.relaxed_defer_frac` — or the wall-clock window crosses
    /// `cfg.relaxed_defer_max`, whichever is first. A sparse scenario
    /// (few concurrent flows, every completion a large rate shift)
    /// therefore solves nearly eagerly and tracks the exact path within
    /// the published tolerance, while a dense shuffle (hundreds of
    /// concurrent flows, each mutation a sub-percent nudge) collapses
    /// dozens of mutations into one solve.
    fn finish_round_relaxed(&mut self, now: SimTime) {
        if self.net_dirty {
            let since = *self.net_dirty_since.get_or_insert(now);
            let defer = self.net_dirty_weight < self.cfg.relaxed_defer_frac
                && self
                    .queue
                    .peek_time()
                    .is_some_and(|t| t.saturating_since(since) <= self.cfg.relaxed_defer_max);
            if !defer {
                let _span = self.flight.span("net_recompute");
                self.net.recompute();
                self.net_dirty = false;
                self.net_dirty_since = None;
                self.net_dirty_weight = 0.0;
                self.projection_dirty = true;
            }
        }
        // Quiet round: no solve and no flow add/remove since the last
        // peek, so the completion heap is untouched and the projection
        // still matches the scheduled flowcheck — skip the peek. Rule
        // activations that move nothing (the bulk of all events) take
        // this path.
        if !self.projection_dirty {
            return;
        }
        self.projection_dirty = false;
        let _span = self.flight.span("net_next_completion");
        let next = self.net.next_completion().map(|(t, _)| t);
        match (next, self.flowcheck) {
            (Some(t), Some((_, th))) if t == th => {}
            (Some(t), prev) => {
                if let Some((h, _)) = prev {
                    self.queue.cancel(h);
                }
                self.flowcheck = Some((self.queue.push(t, Event::FlowCheck), t));
            }
            (None, Some((h, _))) => {
                self.queue.cancel(h);
                self.flowcheck = None;
            }
            (None, None) => {}
        }
    }

    /// Force a deferred rate solve before a handler reads rates or loads
    /// off the network. Relaxed mode only: the exact path solves eagerly
    /// in `finish_round` and must never recompute here — an extra solve
    /// at a read point would reorder byte accumulation and break the
    /// byte-identical fingerprints.
    fn sync_rates_for_read(&mut self) {
        if self.net.relaxed_order() && self.net_dirty {
            let _span = self.flight.span("net_recompute");
            self.net.recompute();
            self.net_dirty = false;
            self.net_dirty_since = None;
            self.net_dirty_weight = 0.0;
            self.projection_dirty = true;
        }
    }

    /// Mark the network dirty from a single-flow mutation: one of the
    /// in-flight fetches started, completed, or moved, nudging its
    /// fair-share neighbors' rates by roughly one part in the concurrent
    /// fetch count.
    fn dirty_net_flow(&mut self) {
        self.net_dirty = true;
        self.net_dirty_weight += 1.0 / self.fetch_of_flow.len().max(1) as f64;
        self.projection_dirty = true;
    }

    /// Mark the network dirty from a structural change (background
    /// redraw, link fault, routing reconvergence): rates shift
    /// everywhere, so a relaxed solve must not be deferred past the next
    /// event.
    fn dirty_net_all(&mut self) {
        self.net_dirty = true;
        self.net_dirty_weight += 1.0;
        self.projection_dirty = true;
    }

    /// Act on a batch of Hadoop outputs, draining `evts` so the caller
    /// can hand the (engine-owned) buffer back for reuse.
    fn apply_hadoop_events(&mut self, now: SimTime, job: JobId, evts: &mut Vec<HadoopEvent>) {
        for e in evts.drain(..) {
            match e {
                HadoopEvent::MapFinishAt { map, at } => {
                    self.queue.push(at, Event::MapFinish(job, map));
                }
                HadoopEvent::SpillIndex { map, server, data } => {
                    let sent = self
                        .pythia
                        .as_mut()
                        .and_then(|py| py.on_spill(now, job, map, server, &data));
                    if let Some((msg, deliver_at)) = sent {
                        self.send_prediction(now, deliver_at, msg);
                    }
                }
                HadoopEvent::ReducerLaunchAt { reducer, at } => {
                    self.queue.push(at, Event::ReducerStart(job, reducer));
                }
                HadoopEvent::ReducerLaunched { reducer, server } => {
                    self.control(
                        now,
                        ControlMsg::ReducerLaunched {
                            job,
                            reducer,
                            server,
                        },
                    );
                }
                HadoopEvent::FetchStart {
                    fetch,
                    map,
                    reducer,
                    src,
                    dst,
                    bytes,
                    src_port,
                    dst_port,
                } => {
                    let wf = WaveFetch {
                        fetch,
                        map,
                        reducer,
                        src,
                        dst,
                        app_bytes: bytes,
                        src_port,
                        dst_port,
                    };
                    if self.cfg.wave_batch {
                        // Defer to the end of this Hadoop batch: the whole
                        // shuffle wave starts through one amortized pass.
                        self.wave_scratch.push(wf);
                    } else {
                        let seed = self.wire_seed ^ pythia_des::splitmix64(job.0 as u64);
                        self.start_one_fetch(now, job, seed, wf);
                    }
                }
                HadoopEvent::SortFinishAt { reducer, at } => {
                    self.queue.push(at, Event::SortFinish(job, reducer));
                }
                HadoopEvent::ReducerFinishAt { reducer, at } => {
                    self.queue.push(at, Event::ReducerFinish(job, reducer));
                }
                HadoopEvent::JobCompleted { .. } => {
                    let slot = &mut self.jobs[job.0 as usize];
                    if !slot.done {
                        slot.done = true;
                        self.jobs_remaining -= 1;
                        // Streaming mode: the job leaves the loop — drop
                        // its simulator, keep the timeline for the report.
                        if self.cfg.stream_jobs {
                            if let Some(sim) = slot.sim.take() {
                                slot.timeline = Some(sim.timeline);
                            }
                        }
                    }
                }
            }
        }
        if !self.wave_scratch.is_empty() {
            self.start_fetch_wave(now, job);
        }
    }

    /// Start every buffered fetch of the wave (one Hadoop output batch,
    /// one job) through a single amortized pass: one flight span covers
    /// the wave, the per-job wire seed is mixed once, and each start
    /// rides the pair→path memo its wave predecessors just warmed.
    /// Per-fetch effects — flow-id assignment, dirty weights, index
    /// inserts, flight records — run in arrival order, so the wave is
    /// byte-identical to starting each fetch in place (fetch starts push
    /// no events and draw no randomness; see [`WaveFetch`]).
    fn start_fetch_wave(&mut self, now: SimTime, job: JobId) {
        let _span = self.flight.span("fetch_wave");
        let mut wave = std::mem::take(&mut self.wave_scratch);
        let job_seed = self.wire_seed ^ pythia_des::splitmix64(job.0 as u64);
        for f in wave.drain(..) {
            self.start_one_fetch(now, job, job_seed, f);
        }
        self.wave_scratch = wave;
    }

    /// Resolve the path a fetch tuple takes through the flow tables,
    /// memoized per (src, dst) pair. Resolutions that depended on nothing
    /// beyond the pair (no port-matching rule, no multi-candidate ECMP
    /// choice) are cached until a rule install targets the pair or an
    /// ECMP reconvergence bumps the routing epoch.
    fn resolve_fetch_path(&mut self, tuple: &FiveTuple) -> Result<Path, ResolveError> {
        let key = (tuple.src, tuple.dst);
        if let Some(c) = self.path_cache.get(&key) {
            if c.routing_epoch == self.routing_epoch {
                return Ok(c.path.clone());
            }
        }
        let mut tuple_sensitive = false;
        let path = self.dataplane.resolve_path_tracked(
            &self.mr.topology,
            tuple,
            &self.ecmp,
            &self.nexthops,
            &mut tuple_sensitive,
        )?;
        if !tuple_sensitive {
            self.path_cache.insert(
                key,
                CachedPath {
                    routing_epoch: self.routing_epoch,
                    path: path.clone(),
                },
            );
        }
        Ok(path)
    }

    /// Start one fetch flow. `job_seed` is the per-job wire-overhead seed
    /// (`wire_seed ^ splitmix64(job)`), mixed once per wave by the
    /// batched caller instead of once per fetch.
    fn start_one_fetch(&mut self, now: SimTime, job: JobId, job_seed: u64, f: WaveFetch) {
        let WaveFetch {
            fetch,
            map,
            reducer,
            src,
            dst,
            app_bytes,
            src_port,
            dst_port,
        } = f;
        let src_node = self.node_of(src);
        let dst_node = self.node_of(dst);
        debug_assert_ne!(src_node, dst_node, "local fetches bypass the network");
        // What actually crosses the wire: payload + real protocol overhead.
        let wire_bytes = overhead::actual_wire_bytes(app_bytes, map.0, reducer.0, job_seed);
        let tuple = FiveTuple::tcp(src_node, dst_node, src_port, dst_port);
        let resolved = self.resolve_fetch_path(&tuple);
        let Ok(path) = resolved else {
            // Degraded fabric (e.g. every trunk cable down): no route
            // exists right now. Parking the fetch and retrying it on the
            // next topology recovery degrades gracefully where a panic
            // would kill the whole run.
            self.flows_unroutable += 1;
            self.flight
                .record(Component::NetSim, || TraceEvent::FlowUnroutable {
                    src: src_node,
                    dst: dst_node,
                });
            self.parked_fetches.push(ParkedFetch {
                job,
                fetch,
                map,
                reducer,
                src,
                dst,
                app_bytes,
                src_port,
                dst_port,
            });
            return;
        };
        let fid = self
            .net
            .start_flow(FlowSpec::tcp_transfer(tuple, wire_bytes), path);
        self.dirty_net_flow();
        self.flight
            .record(Component::NetSim, || TraceEvent::FlowStart {
                flow: fid,
                src: src_node,
                dst: dst_node,
                bytes: wire_bytes,
            });
        self.fetch_of_flow.insert(fid, (job, fetch));
        // Flow ids are allocated monotonically, so appending keeps each
        // pair list in flow-id order.
        self.flows_of_pair
            .entry((src_node, dst_node))
            .or_default()
            .push(fid);
        self.info_of_fetch.insert(
            (job, fetch),
            FetchInfo {
                map,
                reducer,
                src,
                dst,
            },
        );
        let _ = now;
    }

    /// Retry every parked (unroutable) fetch — called when the topology
    /// recovers. Fetches that still have no route simply park again.
    fn retry_parked_fetches(&mut self, now: SimTime) {
        let parked = std::mem::take(&mut self.parked_fetches);
        for p in parked {
            // A retry that parks again does not recount as a new fault.
            let before = self.flows_unroutable;
            let seed = self.wire_seed ^ pythia_des::splitmix64(p.job.0 as u64);
            self.start_one_fetch(
                now,
                p.job,
                seed,
                WaveFetch {
                    fetch: p.fetch,
                    map: p.map,
                    reducer: p.reducer,
                    src: p.src,
                    dst: p.dst,
                    app_bytes: p.app_bytes,
                    src_port: p.src_port,
                    dst_port: p.dst_port,
                },
            );
            if self.flows_unroutable > before {
                self.flows_unroutable = before;
            }
        }
    }

    fn on_flow_complete(&mut self, now: SimTime, fid: FlowId) {
        let _span = self.flight.span("flow_complete");
        let report = self.net.remove_flow(fid);
        self.dirty_net_flow();
        self.trace.push(ShuffleFlowRecord::from_report(
            &report,
            &self.mr.trunk_links,
        ));
        // Crisp measured curves: relaxed mode samples the completing
        // flow's own source curve here (a same-timestamp wave coalesces
        // into one point via the delta-encoded push); exact mode sweeps
        // all counters once per completion batch, in the dispatch loop's
        // advance block.
        if self.net.relaxed_order() {
            self.probe.sample_node(&self.net, report.spec.tuple.src);
        }
        let (job, fetch) = self
            .fetch_of_flow
            .remove(&fid)
            .expect("completed flow is not a fetch");
        let info = self
            .info_of_fetch
            .remove(&(job, fetch))
            .expect("unknown fetch");
        let src_node = self.mr.servers[info.src.0 as usize];
        let dst_node = self.mr.servers[info.dst.0 as usize];
        if let Some(fids) = self.flows_of_pair.get_mut(&(src_node, dst_node)) {
            // Order-preserving removal keeps the list flow-id sorted.
            if let Some(pos) = fids.iter().position(|&f| f == fid) {
                fids.remove(pos);
            }
        }
        self.flight
            .record(Component::NetSim, || TraceEvent::FlowFinish {
                flow: fid,
                src: src_node,
                dst: dst_node,
            });
        self.control(
            now,
            ControlMsg::FetchCompleted {
                job,
                map: info.map,
                reducer: info.reducer,
                src: info.src,
                dst: info.dst,
            },
        );
        let mut evts = std::mem::take(&mut self.hadoop_scratch);
        self.sim_mut(job)
            .fetch_completed_into(now, fetch, &mut evts);
        self.apply_hadoop_events(now, job, &mut evts);
        self.hadoop_scratch = evts;
    }

    /// Dispatch one control-plane message into the shared service
    /// pipeline ([`service::dispatch_control`]) and return the rules it
    /// provoked. No-op (empty) when the scenario runs no Pythia — the
    /// same guard every former `if let Some(py)` site had. Tapped runs
    /// record the message first, so a daemon can replay the identical
    /// stream.
    fn control_rules(
        &mut self,
        now: SimTime,
        msg: &ControlMsg,
    ) -> Vec<pythia_openflow::PendingRule> {
        let Some(mut py) = self.pythia.take() else {
            return Vec::new();
        };
        if let Some(tap) = &self.control_tap {
            tap.borrow_mut().push((now, msg.clone()));
        }
        let rules = service::dispatch_control(&mut py, &mut self.controller, now, msg);
        self.pythia = Some(py);
        rules
    }

    /// Dispatch one control-plane message and schedule whatever rules it
    /// produced under the message's tenant.
    fn control(&mut self, now: SimTime, msg: ControlMsg) {
        let tenant = service::tenant_of(&msg);
        let rules = self.control_rules(now, &msg);
        self.schedule_rules(now, rules, tenant);
    }

    /// Background load changed: refresh the Pythia residual table and
    /// re-place active pairs whose path collapsed (one `BackgroundUpdate`
    /// control message).
    fn control_background_update(&mut self, now: SimTime) {
        if self.pythia.is_some() {
            let loads: Arc<[f64]> = Arc::from(self.background_bps.as_slice());
            self.control(now, ControlMsg::BackgroundUpdate { loads });
        }
    }

    /// Hand one prediction message to the management network and schedule
    /// every copy the channel delivers. On the ideal (default) channel this
    /// is exactly one delivery at `deliver_at` — bit-identical to a direct
    /// push.
    fn send_prediction(&mut self, now: SimTime, deliver_at: SimTime, msg: PredictionMsg) {
        let base = deliver_at.saturating_since(now);
        let mgmt = self
            .mgmt
            .as_mut()
            .expect("Pythia runs carry a mgmt channel");
        let lost_before = mgmt.stats.transmissions_lost;
        let deliveries = mgmt.transmit(now, base);
        let copies = deliveries.len() as u32;
        let lost = (mgmt.stats.transmissions_lost - lost_before) as u32;
        self.flight
            .record(Component::Instrument, || TraceEvent::PredictionWire {
                copies,
                lost,
            });
        let msg = Arc::new(msg);
        for at in deliveries {
            self.queue
                .push(at, Event::PredictionDeliver(Arc::clone(&msg)));
        }
    }

    /// Issue a batch of pending rules on behalf of `tenant`
    /// ([`SYSTEM_TENANT`] for fabric-driven rules). Per-prediction mode
    /// schedules each install directly; epoch-batched mode parks the
    /// rules in the per-pod buffer the next `EpochFlush` drains — one
    /// batched controller push per pod per epoch.
    fn schedule_rules(
        &mut self,
        now: SimTime,
        rules: Vec<pythia_openflow::PendingRule>,
        tenant: u32,
    ) {
        if (tenant as usize) < self.tenant_rules_issued.len() {
            self.tenant_rules_issued[tenant as usize] += rules.len() as u64;
        }
        if self.cfg.install_epoch.is_some() {
            for p in rules {
                let pod = self.pod_of_node[p.switch.0 as usize];
                self.epoch_buf.entry(pod).or_default().push(BufferedRule {
                    switch: p.switch,
                    rule: p.rule,
                    delay: p.delay,
                    tenant,
                });
            }
            return;
        }
        for p in rules {
            self.queue.push(
                now + p.delay,
                Event::RuleActive {
                    switch: p.switch,
                    rule: p.rule,
                    generation: self.rule_generation,
                    tenant,
                },
            );
        }
    }

    /// Drain the per-pod install buffers (epoch-batched mode): every pod
    /// with buffered rules gets one batched install this epoch, rules in
    /// arrival order within the batch. Install latency still applies per
    /// rule — batching amortizes controller round-trips, not switch
    /// programming time.
    fn on_epoch_flush(&mut self, now: SimTime) {
        let buf = std::mem::take(&mut self.epoch_buf);
        for (_pod, rules) in buf {
            if rules.is_empty() {
                continue;
            }
            self.epoch_batches += 1;
            for b in rules {
                self.queue.push(
                    now + b.delay,
                    Event::RuleActive {
                        switch: b.switch,
                        rule: b.rule,
                        generation: self.rule_generation,
                        tenant: b.tenant,
                    },
                );
            }
        }
        if !self.all_done() {
            if let Some(epoch) = self.cfg.install_epoch {
                self.queue.push(now + epoch, Event::EpochFlush);
            }
        }
    }

    fn on_rule_active(&mut self, switch: NodeId, rule: FlowRule, tenant: u32) {
        // A rule matching an explicit (src, dst) pair can only change that
        // pair's resolution; wildcard matchers (none of our controllers
        // emit them) invalidate everything via the routing epoch.
        match (rule.matcher.src, rule.matcher.dst) {
            (Some(src), Some(dst)) => {
                self.path_cache.remove(&(src, dst));
            }
            _ => {
                self.path_cache.clear();
                self.routing_epoch += 1;
            }
        }
        // TCAM overflow: the rule is simply not installed; traffic keeps
        // using the default (ECMP) path — graceful degradation, not an
        // error.
        if self.dataplane.install(switch, rule).is_ok() {
            self.rules_installed += 1;
            if (tenant as usize) < self.tenant_rules_installed.len() {
                self.tenant_rules_installed[tenant as usize] += 1;
            }
            self.flight
                .record(Component::Dataplane, || TraceEvent::RuleActive {
                    switch,
                    src: rule.matcher.src,
                    dst: rule.matcher.dst,
                    out_link: rule.out_link,
                });
        } else {
            self.tcam_rejected += 1;
            if (tenant as usize) < self.tenant_tcam_rejected.len() {
                self.tenant_tcam_rejected[tenant as usize] += 1;
            }
            self.flight
                .record(Component::Dataplane, || TraceEvent::RuleTcamReject {
                    switch,
                });
        }
        // A newly active rule redirects matching *in-flight* flows too —
        // hardware matches packets, not flows. Pythia installs
        // server-pair rules, so the pair index hands back exactly the
        // flows the matcher can hit; the full scan remains only for
        // wildcard matchers no current controller emits.
        let mut matching = std::mem::take(&mut self.candidates_scratch);
        matching.clear();
        match (rule.matcher.src, rule.matcher.dst) {
            (Some(src), Some(dst)) => {
                if let Some(fids) = self.flows_of_pair.get(&(src, dst)) {
                    // Lists are in flow-id order, matching the id-ordered
                    // full scan this replaces.
                    matching.extend(fids.iter().filter_map(|&fid| {
                        let f = self.net.flow(fid)?;
                        (!f.is_complete() && rule.matcher.matches(&f.spec.tuple))
                            .then_some((fid, f.spec.tuple))
                    }));
                }
            }
            _ => {
                matching.extend(
                    self.net
                        .flows()
                        .filter(|(_, f)| {
                            f.spec.size_bytes.is_some()
                                && !f.is_complete()
                                && rule.matcher.matches(&f.spec.tuple)
                        })
                        .map(|(id, f)| (id, f.spec.tuple)),
                );
            }
        }
        for &(fid, tuple) in &matching {
            if let Ok(path) = self.resolve_fetch_path(&tuple) {
                if path.links() != self.net.flow(fid).unwrap().path.links() {
                    self.net.reroute_flow(fid, path);
                    self.dirty_net_flow();
                }
            }
        }
        matching.clear();
        self.candidates_scratch = matching;
    }

    /// The SDN controller crashed or came back. Installed rules survive a
    /// crash (switches forward autonomously without their controller) but
    /// in-flight installs are lost and no new rules can land until
    /// recovery, when the controller resyncs the full rule set from
    /// Pythia's collector/allocator state.
    fn on_controller_state(&mut self, now: SimTime, up: bool) {
        if up == self.controller_up {
            return;
        }
        self.controller_up = up;
        self.flight
            .record(Component::Engine, || TraceEvent::ControllerState { up });
        if up {
            if let Some(since) = self.controller_down_since.take() {
                self.controller_down_total += now.saturating_since(since);
            }
            if self.pythia.is_some() {
                let rules = self.control_rules(now, &ControlMsg::ControllerRestart);
                self.flight
                    .record(Component::Engine, || TraceEvent::ControllerResync {
                        rules: rules.len() as u32,
                    });
                self.schedule_rules(now, rules, SYSTEM_TENANT);
            }
        } else {
            self.controller_outages_seen += 1;
            self.controller_down_since = Some(now);
            // An install that has not reached its switch dies with the
            // controller connection: bump the epoch so every in-flight
            // `RuleActive` is recognized as stale at dispatch. O(1) per
            // crash, no handle bookkeeping on the install hot path.
            self.rule_generation += 1;
            // Epoch-batched installs not yet pushed die the same death —
            // the restart resync re-derives every surviving rule.
            self.epoch_buf.clear();
            self.control(now, ControlMsg::ControllerDown);
        }
    }

    /// Every instrumentation agent restarts and replays the spill indices
    /// still on disk: the predictions are re-sent end to end and the
    /// collector's `(job, map)` dedup must absorb every copy.
    fn on_agent_respill(&mut self, now: SimTime) {
        if self.pythia.is_none() {
            return;
        }
        for i in 0..self.jobs.len() {
            let job = JobId(i as u32);
            let mut evts = std::mem::take(&mut self.hadoop_scratch);
            // Streamed jobs that have not started (no spill indices on
            // disk yet) or already retired (their reducers are done; a
            // replay would be deduped anyway) have no simulator to replay.
            let Some(sim) = self.jobs[i].sim.as_mut() else {
                self.hadoop_scratch = evts;
                continue;
            };
            sim.respill_completed_into(&mut evts);
            for e in evts.drain(..) {
                if let HadoopEvent::SpillIndex { map, server, data } = e {
                    let sent = self
                        .pythia
                        .as_mut()
                        .and_then(|py| py.on_spill(now, job, map, server, &data));
                    if let Some((msg, deliver_at)) = sent {
                        self.send_prediction(now, deliver_at, msg);
                    }
                }
            }
            self.hadoop_scratch = evts;
        }
    }

    /// TTL sweep over parked (unknown-reducer) collector entries.
    fn on_parked_sweep(&mut self, now: SimTime) {
        self.control(now, ControlMsg::ExpireParked);
        if !self.all_done() {
            if let Some(ttl) = self.cfg.pythia.parked_ttl {
                self.queue.push(now + ttl, Event::ParkedSweep);
            }
        }
    }

    fn on_hedera_tick(&mut self, now: SimTime) {
        // Hedera's rebalance plans from current flow rates and loads.
        self.sync_rates_for_read();
        if !self.controller_up {
            // Hedera polls flow stats through the controller: a downed
            // controller means no reroutes this tick.
            if !self.all_done() {
                self.queue
                    .push(now + self.cfg.hedera.period, Event::HederaTick);
            }
            return;
        }
        if let Some(mut hedera) = self.hedera.take() {
            // Borrowed view: the scheduler only reads the background
            // table during the call, so no per-tick clone.
            let bg = &self.background_bps;
            let reroutes = hedera.rebalance(&self.net, &mut self.controller, &|l: LinkId| {
                bg[l.0 as usize]
            });
            for r in reroutes {
                // Skip flows that completed during this tick's planning.
                if self.net.flow(r.flow).is_some() {
                    self.net.reroute_flow(r.flow, r.path);
                    self.dirty_net_flow();
                }
            }
            self.hedera = Some(hedera);
            if !self.all_done() {
                self.queue
                    .push(now + self.cfg.hedera.period, Event::HederaTick);
            }
        }
    }

    /// Redraw the background split within each trunk direction group and
    /// notify the Pythia control loop (whose link-load view just changed).
    fn on_background_change(&mut self, now: SimTime) {
        let BackgroundProfile::Fluctuating {
            period_secs,
            spread,
        } = self.cfg.background
        else {
            return;
        };
        let frac = self.cfg.oversubscription.background_fraction();
        if frac > 0.0 {
            for (cap, members) in &self.bg_groups {
                let alive: Vec<&(LinkId, FlowId)> = members
                    .iter()
                    .filter(|(l, _)| !self.down_links.contains(l))
                    .collect();
                if alive.is_empty() {
                    continue;
                }
                // The direction's total background squeezes onto the
                // surviving cables (scaled down to what they can carry).
                let frac_alive = (frac * members.len() as f64 / alive.len() as f64).min(0.995);
                let rates =
                    redraw_group_rates(*cap, alive.len(), frac_alive, spread, &mut self.bg_rng);
                for (&&(link, fid), rate) in alive.iter().zip(rates) {
                    self.net.set_cbr_rate(fid, rate.max(1.0));
                    self.background_bps[link.0 as usize] = rate;
                }
            }
            self.dirty_net_all();
            // Pythia's link-load service sees the shift: one O(links)
            // residual refresh, then re-place active pairs whose path
            // collapsed using table lookups only.
            self.control_background_update(now);
        }
        if !self.all_done() {
            self.queue.push(
                now + pythia_des::SimDuration::from_secs_f64(period_secs),
                Event::BackgroundChange,
            );
        }
    }

    /// A trunk cable failed or recovered: degrade/restore both directed
    /// links, update the controller's routing graph, flush dead rules,
    /// reconverge ECMP, reroute affected in-flight flows, and let Pythia
    /// re-place its active pairs.
    fn on_link_state(&mut self, now: SimTime, trunk_cable: usize, up: bool) {
        // trunk_links holds duplex pairs consecutively: cable i is
        // entries 2i and 2i+1.
        let a = self.mr.trunk_links[2 * trunk_cable];
        let bdir = self.mr.trunk_links[2 * trunk_cable + 1];
        for l in [a, bdir] {
            self.flight
                .record(Component::Engine, || TraceEvent::LinkState { link: l, up });
            if up {
                self.down_links.remove(&l);
                self.net
                    .set_link_capacity(l, self.orig_capacity[l.0 as usize]);
            } else {
                self.down_links.insert(l);
                // A dead cable carries (effectively) nothing; 1 bps keeps
                // the fair-share arithmetic well-defined.
                self.net.set_link_capacity(l, 1.0);
                // The iperf endpoint on the cable loses carrier too.
                for (_, members) in &self.bg_groups {
                    for &(link, fid) in members {
                        if link == l {
                            self.net.set_cbr_rate(fid, 1.0);
                            self.background_bps[l.0 as usize] = 0.0;
                        }
                    }
                }
                self.dataplane.remove_rules_via(l);
            }
            // The controller's routing-graph update flows through the
            // control-plane service on Pythia runs (so a daemon replay
            // keeps identical controller state); other schedulers poke
            // the controller directly, as before.
            if self.pythia.is_some() {
                self.control(now, ControlMsg::LinkState { link: l, up });
            } else {
                self.controller.on_link_state(l, up);
            }
        }
        self.dirty_net_all();
        // Routing protocol reconvergence for default (ECMP) forwarding.
        self.nexthops = EcmpNextHops::compute_avoiding(&self.mr.topology, &self.down_links);
        self.routing_epoch += 1;
        // Re-resolve in-flight flows touching a changed link (on failure)
        // or all flows (on recovery ECMP may spread them back). The fetch
        // registry (flow-id ordered) and the per-link incidence lists
        // replace the old full-flow scan: cost is O(fetches touched), not
        // O(all flows).
        let mut affected = std::mem::take(&mut self.candidates_scratch);
        affected.clear();
        if up {
            // Every in-flight fetch, in flow-id order.
            affected.extend(self.fetch_of_flow.keys().map(|&fid| {
                let f = self.net.flow(fid).unwrap();
                (fid, f.spec.tuple)
            }));
        } else {
            // Only fetches whose current path crosses a dead link. The
            // union over an unordered set is sorted + deduplicated, so
            // downstream work runs in flow-id order like the scan it
            // replaces.
            for &l in &self.down_links {
                for fid in self.net.flows_on_link(l) {
                    if self.fetch_of_flow.contains_key(&fid) {
                        let tuple = self.net.flow(fid).unwrap().spec.tuple;
                        affected.push((fid, tuple));
                    }
                }
            }
            affected.sort_unstable_by_key(|&(fid, _)| fid);
            affected.dedup_by_key(|&mut (fid, _)| fid);
        }
        for &(fid, tuple) in &affected {
            if let Ok(path) = self.resolve_fetch_path(&tuple) {
                if path.links() != self.net.flow(fid).unwrap().path.links() {
                    self.net.reroute_flow(fid, path);
                }
            }
        }
        affected.clear();
        self.candidates_scratch = affected;
        // A recovery may give parked (unroutable) fetches a route again.
        if up && !self.parked_fetches.is_empty() {
            self.retry_parked_fetches(now);
        }
        // Pythia re-places active pairs on the updated path cache.
        self.control_background_update(now);
        // On restore, the fluctuating profile re-populates the cable on
        // its next redraw; static profiles restore immediately.
        if up {
            if let BackgroundProfile::Static = self.cfg.background {
                let frac = self.cfg.oversubscription.background_fraction();
                for (cap, members) in &self.bg_groups {
                    for &(link, fid) in members {
                        if link == a || link == bdir {
                            self.net.set_cbr_rate(fid, (frac * cap).max(1.0));
                            self.background_bps[link.0 as usize] = frac * cap;
                        }
                    }
                }
                // The restore changed background after the re-place above
                // (kept in that order deliberately); sync the residual
                // table so later placements see the restored load.
                if self.pythia.is_some() {
                    let loads: Arc<[f64]> = Arc::from(self.background_bps.as_slice());
                    self.control(now, ControlMsg::BackgroundRefresh { loads });
                }
            }
        }
    }

    fn on_link_load_sample(&mut self, now: SimTime) {
        // The controller samples real link loads: settle deferred solves.
        self.sync_rates_for_read();
        if self.pythia.is_some() {
            // Pythia runs ship the sample through the control-plane
            // service as one dense telemetry message, so a daemon replay
            // evolves identical controller load state.
            let loads: Arc<[f64]> = (0..self.mr.topology.num_links())
                .map(|i| self.net.link_load_bps(LinkId(i as u32)))
                .collect();
            self.control(now, ControlMsg::LinkLoads { loads });
        } else {
            for (l, _) in self.mr.topology.links() {
                self.controller
                    .observe_link_load(l, self.net.link_load_bps(l));
            }
        }
        if !self.all_done() {
            self.queue
                .push(now + self.cfg.link_load_period, Event::LinkLoadSample);
        }
    }

    fn build_report(self) -> MultiRunReport {
        // Group parallel trunk cables by direction for balance metrics.
        let mut trunk_groups: BTreeMap<(NodeId, NodeId), Vec<LinkId>> = BTreeMap::new();
        for &l in &self.mr.trunk_links {
            let link = self.mr.topology.link(l);
            trunk_groups
                .entry((link.src, link.dst))
                .or_default()
                .push(l);
        }
        let trunk_groups: Vec<Vec<LinkId>> = trunk_groups.into_values().collect();
        let measured_curves = self.probe.curves().map(|(n, c)| (n, c.clone())).collect();
        let predicted_curves = match &self.pythia {
            Some(py) => self
                .mr
                .servers
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| {
                    py.predicted_curve(ServerId(i as u32), n)
                        .map(|c| (n, c.clone()))
                })
                .collect(),
            None => BTreeMap::new(),
        };
        let spills_per_server = match &self.pythia {
            Some(py) => (0..self.mr.servers.len() as u32)
                .map(|i| py.spills_decoded(ServerId(i)))
                .collect(),
            None => vec![0; self.mr.servers.len()],
        };
        let jobs: Vec<JobOutcome> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| JobOutcome {
                job: JobId(i as u32),
                name: j.name.clone(),
                started_at: j.start_at,
                // Live slots report straight from the simulator; retired
                // (streamed) slots kept their timeline at retirement.
                timeline: j
                    .sim
                    .as_ref()
                    .map(|s| s.timeline.clone())
                    .or_else(|| j.timeline.clone())
                    .expect("report built before job materialized"),
            })
            .collect();
        let tenant_usage: Vec<pythia_metrics::TenantUsage> = jobs
            .iter()
            .map(|j| {
                let i = j.job.0 as usize;
                pythia_metrics::TenantUsage {
                    job: j.job.0,
                    name: j.name.clone(),
                    completion_secs: j
                        .timeline
                        .completion()
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(f64::NAN),
                    slowdown: None,
                    rules_issued: self.tenant_rules_issued[i],
                    rules_installed: self.tenant_rules_installed[i],
                    tcam_rejected: self.tenant_tcam_rejected[i],
                }
            })
            .collect();
        let mut degradation = DegradationReport {
            rules_failed: self.controller.stats.rules_failed,
            rules_timed_out: self.controller.stats.rules_timed_out,
            rules_tcam_rejected: self.tcam_rejected,
            controller_outages: self.controller_outages_seen,
            controller_down_secs: self.controller_down_total.as_secs_f64(),
            flows_unroutable: self.flows_unroutable,
            background_flows_skipped: self.background_flows_skipped,
            ..Default::default()
        };
        if let Some(m) = &self.mgmt {
            degradation.predictions_sent = m.stats.messages_sent;
            degradation.predictions_delivered = m.stats.deliveries;
            degradation.prediction_transmissions_lost = m.stats.transmissions_lost;
            degradation.predictions_lost = m.stats.messages_lost;
        }
        if let Some(py) = &self.pythia {
            let c = py.collector_totals();
            degradation.predictions_deduped = c.duplicates_dropped;
            degradation.predictions_retracted = c.retractions;
            degradation.predictions_malformed = c.malformed_dropped;
            degradation.parked_expired = c.parked_expired;
            let stats = py.stats();
            degradation.demands_deferred = stats.demands_deferred;
            degradation.rules_reinstalled = stats.rules_reinstalled;
            degradation.demands_no_path = stats.demands_no_path;
        }
        // Engine-health counters for the flight recorder: where the event
        // queue and the rate solver actually spent their work.
        self.flight
            .count("eventq_dead_shed", self.queue.dead_shed());
        self.flight
            .count("eventq_compactions", self.queue.compactions());
        let ns = self.net.stats();
        self.flight.count("net_recomputes", ns.recomputes);
        self.flight.count("net_region_links", ns.region_links);
        self.flight.count("net_region_flows", ns.region_flows);
        self.flight
            .count("net_advance_flow_steps", ns.advance_flow_steps);
        self.flight.count("net_heap_pushes", ns.heap_pushes);
        self.flight
            .count("net_heap_compactions", ns.heap_compactions);
        self.flight
            .count("net_cbr_flow_updates", ns.cbr_flow_updates);
        let trace_stats = self.flight.stats();
        let trace_events = self.flight.take_events();
        MultiRunReport {
            scheduler: self.cfg.scheduler.label().to_string(),
            oversubscription: self.cfg.oversubscription.0,
            seed: self.cfg.seed,
            jobs,
            flow_trace: self.trace,
            measured_curves,
            predicted_curves,
            spills_per_server,
            events_processed: self.events_processed,
            rules_installed: self.rules_installed,
            hedera_reroutes: self.hedera.as_ref().map(|h| h.reroutes_issued).unwrap_or(0),
            epoch_batches: self.epoch_batches,
            tenant_usage,
            degradation,
            trunk_links: self.mr.trunk_links.clone(),
            trunk_groups,
            trace_events,
            trace_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_netsim::TopologyBuilder;

    /// Regression for the former `expect("bad background path")` at
    /// engine construction: a background entry that forms no valid path
    /// (a degraded or degenerate fabric handing back an empty or
    /// discontinuous link list) must be skipped and counted in the
    /// degradation report, not panic the run before it starts.
    #[test]
    fn degenerate_background_entry_is_skipped_not_panicking() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_server("s0", 0);
        let s1 = b.add_server("s1", 1);
        let t0 = b.add_tor_switch("tor0", 0);
        let t1 = b.add_tor_switch("tor1", 1);
        let (s0_up, _) = b.add_duplex(s0, t0, 1e9);
        b.add_duplex(s1, t1, 1e9);
        let (trunk_up, _) = b.add_duplex(t0, t1, 1e9);
        let topo = b.build();
        let mut net = FlowNet::new(topo.clone());

        let cbr = |sport: u16| FlowSpec::cbr(FiveTuple::udp(t0, t1, sport, 5001), 1e8);
        let good = (cbr(1), vec![trunk_up]);
        // trunk_up ends at tor1 but s0_up starts at s0: discontinuous.
        let discontinuous = (cbr(2), vec![trunk_up, s0_up]);
        let empty = (cbr(3), vec![]);

        let r = install_background_flows(&mut net, &topo, vec![good, discontinuous, empty]);
        assert_eq!(r.skipped, 2);
        assert_eq!(r.groups.len(), 1, "only the valid entry installed");
        assert_eq!(r.groups[0].1.len(), 1);
        assert!(r.background_bps[trunk_up.0 as usize] > 0.0);
        // Skipped entries leave no phantom load behind.
        assert_eq!(r.background_bps[s0_up.0 as usize], 0.0);
    }
}
