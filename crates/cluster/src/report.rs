//! The outcome of scenario runs.

use std::collections::BTreeMap;

use pythia_des::{SimDuration, SimTime};
use pythia_hadoop::{JobId, Timeline};
use pythia_metrics::{DegradationReport, FlowTrace, JobReport};
use pythia_netsim::{CumulativeCurve, NodeId};
use pythia_trace::{TimedEvent, TraceStats};

/// One job's result inside a (possibly multi-job) run.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's engine-assigned id.
    pub job: JobId,
    /// The job's name from its spec.
    pub name: String,
    /// When the job was submitted (absolute simulated time).
    pub started_at: SimTime,
    /// Its Hadoop-side phase timeline.
    pub timeline: Timeline,
}

impl JobOutcome {
    /// Completion time measured from the job's own start.
    pub fn completion(&self) -> SimDuration {
        self.timeline
            .completion()
            .expect("outcome of unfinished job")
    }
}

/// The outcome of a multi-job scenario run.
#[derive(Debug)]
pub struct MultiRunReport {
    /// Flow scheduler label.
    pub scheduler: String,
    /// Over-subscription ratio (N of 1:N).
    pub oversubscription: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// One outcome per submitted job, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// NetFlow-style per-flow records (all jobs combined).
    pub flow_trace: FlowTrace,
    /// Measured cumulative sourced bytes per server node (NetFlow probe).
    pub measured_curves: BTreeMap<NodeId, CumulativeCurve>,
    /// Pythia's predicted cumulative curves (empty for baselines).
    pub predicted_curves: BTreeMap<NodeId, CumulativeCurve>,
    /// Spill-index decodes per Hadoop server (overhead model input).
    pub spills_per_server: Vec<u64>,
    /// Events the engine processed.
    pub events_processed: u64,
    /// OpenFlow rules that actually landed in switch TCAMs.
    pub rules_installed: u64,
    /// Reroutes issued by the Hedera baseline (0 otherwise).
    pub hedera_reroutes: u64,
    /// Non-empty per-pod install batches flushed (epoch-batched install
    /// mode; 0 under per-prediction installs).
    pub epoch_batches: u64,
    /// Per-tenant control-plane footprint (rules issued/installed, TCAM
    /// rejections, completion), in job order. Feed to
    /// [`MultiRunReport::fairness`] for the fleet-level summary.
    pub tenant_usage: Vec<pythia_metrics::TenantUsage>,
    /// Control-plane faults absorbed during the run (all-zeros —
    /// [`DegradationReport::is_clean`] — on a fault-free scenario).
    pub degradation: DegradationReport,
    /// Trunk links of the topology (for balance analyses).
    pub trunk_links: Vec<pythia_netsim::LinkId>,
    /// Trunk links grouped by direction (parallel cables between the same
    /// switch pair form one group).
    pub trunk_groups: Vec<Vec<pythia_netsim::LinkId>>,
    /// Flight-recorder events of the run (empty unless
    /// `ScenarioConfig::trace` enabled the recorder).
    pub trace_events: Vec<TimedEvent>,
    /// Flight-recorder registry snapshot (counters, span histograms).
    pub trace_stats: TraceStats,
}

impl MultiRunReport {
    /// Fleet-level fairness summary over the run's tenants (rule-install
    /// shares, Jain indices, TCAM contention). Pass the result through
    /// [`pythia_metrics::FairnessReport::with_isolated`] to add
    /// slowdown-vs-isolated once per-job baselines exist.
    pub fn fairness(&self) -> pythia_metrics::FairnessReport {
        pythia_metrics::FairnessReport::from_tenants(self.tenant_usage.clone())
    }

    /// End of the last job, from t = 0.
    pub fn makespan(&self) -> SimDuration {
        self.jobs
            .iter()
            .map(|j| j.timeline.job_end.expect("unfinished job"))
            .max()
            .expect("no jobs")
            .saturating_since(SimTime::ZERO)
    }

    /// Collapse a single-job run into the classic [`RunReport`].
    ///
    /// # Panics
    /// Panics if the run held more than one job.
    pub fn into_single(mut self) -> RunReport {
        assert_eq!(self.jobs.len(), 1, "into_single on a multi-job run");
        let job = self.jobs.remove(0);
        RunReport {
            workload: job.name,
            scheduler: self.scheduler,
            oversubscription: self.oversubscription,
            seed: self.seed,
            timeline: job.timeline,
            flow_trace: self.flow_trace,
            measured_curves: self.measured_curves,
            predicted_curves: self.predicted_curves,
            spills_per_server: self.spills_per_server,
            events_processed: self.events_processed,
            rules_installed: self.rules_installed,
            hedera_reroutes: self.hedera_reroutes,
            degradation: self.degradation,
            trunk_links: self.trunk_links,
            trunk_groups: self.trunk_groups,
            trace_events: self.trace_events,
            trace_stats: self.trace_stats,
        }
    }
}

/// Everything an experiment might want to know about one single-job run.
#[derive(Debug)]
pub struct RunReport {
    /// Benchmark/job name.
    pub workload: String,
    /// Flow scheduler label.
    pub scheduler: String,
    /// Over-subscription ratio (N of 1:N).
    pub oversubscription: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// The Hadoop-side phase timeline.
    pub timeline: Timeline,
    /// NetFlow-style per-flow records.
    pub flow_trace: FlowTrace,
    /// Measured cumulative sourced bytes per server node (NetFlow probe).
    pub measured_curves: BTreeMap<NodeId, CumulativeCurve>,
    /// Pythia's predicted cumulative curves (empty for baselines).
    pub predicted_curves: BTreeMap<NodeId, CumulativeCurve>,
    /// Spill-index decodes per Hadoop server (overhead model input).
    pub spills_per_server: Vec<u64>,
    /// Events the engine processed.
    pub events_processed: u64,
    /// OpenFlow rules that actually landed in switch TCAMs.
    pub rules_installed: u64,
    /// Reroutes issued by the Hedera baseline (0 otherwise).
    pub hedera_reroutes: u64,
    /// Control-plane faults absorbed during the run (all-zeros —
    /// [`DegradationReport::is_clean`] — on a fault-free scenario).
    pub degradation: DegradationReport,
    /// Trunk links of the topology (for balance analyses).
    pub trunk_links: Vec<pythia_netsim::LinkId>,
    /// Trunk links grouped by direction (parallel cables between the same
    /// switch pair form one group).
    pub trunk_groups: Vec<Vec<pythia_netsim::LinkId>>,
    /// Flight-recorder events of the run (empty unless
    /// `ScenarioConfig::trace` enabled the recorder).
    pub trace_events: Vec<TimedEvent>,
    /// Flight-recorder registry snapshot (counters, span histograms).
    pub trace_stats: TraceStats,
}

impl RunReport {
    /// Job completion time.
    pub fn completion(&self) -> SimDuration {
        self.timeline
            .completion()
            .expect("run report of unfinished job")
    }

    /// Flattened per-run record for CSV output.
    pub fn job_report(&self) -> JobReport {
        JobReport::from_timeline(
            &self.workload,
            &self.scheduler,
            self.oversubscription,
            self.seed,
            &self.timeline,
        )
    }

    /// Imbalance of shuffle bytes across parallel trunk cables, grouped
    /// by direction (1.0 = perfect balance of every used direction).
    pub fn trunk_imbalance(&self) -> f64 {
        self.flow_trace.trunk_imbalance_grouped(&self.trunk_groups)
    }
}
