#![warn(missing_docs)]

//! `pythia-cluster` — the cluster orchestrator.
//!
//! Composes the substrates into runnable scenarios: a [`config::ScenarioConfig`]
//! (topology, over-subscription, scheduler, seeds) plus a
//! [`pythia_hadoop::JobSpec`] goes in; a [`report::RunReport`] (timelines,
//! flow traces, measured/predicted curves) comes out.
//!
//! See [`engine`] for the event-loop contract.
//!
//! ```
//! use pythia_cluster::{run_scenario, ScenarioConfig, SchedulerKind};
//! use pythia_des::SimDuration;
//! use pythia_hadoop::{DurationModel, JobSpec, UniformPartitioner};
//!
//! let job = JobSpec {
//!     name: "doc".into(),
//!     num_maps: 8,
//!     num_reducers: 4,
//!     input_bytes: 8 * 64_000_000,
//!     map_output_ratio: 1.0,
//!     map_duration: DurationModel::rate(SimDuration::from_secs(1), 50e6, 0.1),
//!     sort_duration: DurationModel::fixed(SimDuration::from_millis(500)),
//!     reduce_duration: DurationModel::fixed(SimDuration::from_millis(500)),
//!     partitioner: Box::new(UniformPartitioner),
//! };
//! let cfg = ScenarioConfig::default()
//!     .with_scheduler(SchedulerKind::Pythia)
//!     .with_oversubscription(10)
//!     .with_seed(1);
//! let report = run_scenario(job, &cfg);
//! assert!(report.timeline.job_end.is_some());
//! assert!(report.rules_installed > 0);
//! ```

pub mod config;
pub mod engine;
pub mod report;
pub mod service;
pub mod snapshot;
pub mod tolerance;

pub use config::{
    ControllerOutage, LinkFault, ScenarioConfig, SchedulerKind, RELAXED_ABS_EPS_SECS,
    RELAXED_COMPLETION_EPS, RELAXED_CURVE_EPS,
};
pub use engine::{
    capture_multi_snapshot, fork_multi_scenario, resume_multi_from_bytes, resume_multi_scenario,
    run_multi_scenario, run_multi_scenario_checkpointed, run_multi_scenario_tapped, run_scenario,
    run_scenario_tapped,
};
pub use pythia_snapshot::SnapshotError;
pub use report::{JobOutcome, MultiRunReport, RunReport};
pub use service::{
    dispatch_control, tenant_of, ControlMsg, ServiceCore, ServiceError, SYSTEM_TENANT,
};
pub use snapshot::{config_hash, fork_config_hash, CheckpointPolicy};
pub use tolerance::{compare_conservation, compare_tolerance, ToleranceReport};
