//! Checkpoint policy and scenario fingerprinting for crash-durable runs.
//!
//! The engine serializes itself through `pythia-snapshot`'s pure core;
//! this module holds the knobs that decide *when* a checkpoint is taken
//! and the configuration hash that pairs a snapshot with the scenario it
//! was taken under. The filesystem work itself (atomic
//! write-to-temp-then-rename, the `MANIFEST` file) lives in
//! [`pythia_snapshot::shell`].

use std::path::PathBuf;

use pythia_des::SimDuration;

use crate::config::ScenarioConfig;

/// When and where periodic checkpoints are written during a run.
///
/// Both cadence knobs may be set at once; a checkpoint is taken whenever
/// either is due. Checkpoints land at the bottom of the event loop —
/// after the event's effects and the rate solve — so the snapshot is
/// always of a settled simulation. On the exact solver path a
/// checkpointing run stays byte-identical to an uncheckpointed one; the
/// relaxed-order path settles its deferred solve at each checkpoint
/// (always a legal solve point, covered by the published tolerance).
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory the snapshot files and `MANIFEST` are written into.
    pub dir: PathBuf,
    /// Checkpoint every N processed events.
    pub every_events: Option<u64>,
    /// Checkpoint every T of simulated time.
    pub every_sim_time: Option<SimDuration>,
    /// Crash-injection hook for kill tests: abort the process (no
    /// unwinding, like `kill -9` landing here) just before dispatching
    /// the N-th event.
    pub die_at_event: Option<u64>,
    /// Keep every snapshot file instead of deleting the one the new
    /// manifest no longer points at.
    pub retain_all: bool,
}

impl CheckpointPolicy {
    /// A policy writing into `dir` with no cadence set (no periodic
    /// checkpoints until one of the `every_*` builders is applied).
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every_events: None,
            every_sim_time: None,
            die_at_event: None,
            retain_all: false,
        }
    }

    /// Checkpoint every `n` processed events.
    pub fn every_events(mut self, n: u64) -> Self {
        assert!(n > 0, "checkpoint cadence must be positive");
        self.every_events = Some(n);
        self
    }

    /// Checkpoint every `d` of simulated time.
    pub fn every_sim_time(mut self, d: SimDuration) -> Self {
        assert!(d > SimDuration::ZERO, "checkpoint cadence must be positive");
        self.every_sim_time = Some(d);
        self
    }

    /// Abort the process just before dispatching event `n` (kill tests).
    pub fn die_at_event(mut self, n: u64) -> Self {
        self.die_at_event = Some(n);
        self
    }

    /// Keep every snapshot file on disk.
    pub fn retain_all(mut self) -> Self {
        self.retain_all = true;
        self
    }
}

/// FNV-1a 64-bit over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a scenario configuration, recorded in each checkpoint's
/// manifest and checked on resume: a snapshot resumed under a different
/// configuration is a typed [`pythia_snapshot::SnapshotError::ConfigMismatch`],
/// not a silently divergent run. The hash covers the config's complete
/// `Debug` rendering, so any field change invalidates old checkpoints.
pub fn config_hash(cfg: &ScenarioConfig) -> u64 {
    fnv1a64(format!("{cfg:?}").as_bytes())
}

/// [`config_hash`] with the chaos schedule (link faults, controller
/// outages, agent respills) cleared — what a *fork* must agree on: the
/// warm-up the snapshot captured is shared, only the chaos injected after
/// the fork point may differ.
pub fn fork_config_hash(cfg: &ScenarioConfig) -> u64 {
    let mut base = cfg.clone();
    base.link_faults.clear();
    base.controller_outages.clear();
    base.agent_respill_at.clear();
    config_hash(&base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_sensitive() {
        let a = ScenarioConfig::default();
        let b = ScenarioConfig::default();
        assert_eq!(config_hash(&a), config_hash(&b));
        let c = ScenarioConfig::default().with_seed(99);
        assert_ne!(config_hash(&a), config_hash(&c));
    }

    #[test]
    fn fork_hash_ignores_chaos_schedule() {
        let base = ScenarioConfig::default();
        let mut chaotic = ScenarioConfig::default();
        chaotic
            .controller_outages
            .push(crate::config::ControllerOutage {
                down_at: SimDuration::from_secs(5),
                up_at: SimDuration::from_secs(6),
            });
        assert_ne!(config_hash(&base), config_hash(&chaotic));
        assert_eq!(fork_config_hash(&base), fork_config_hash(&chaotic));
        // But a non-chaos change still shows through.
        let other = ScenarioConfig::default().with_seed(99);
        assert_ne!(fork_config_hash(&base), fork_config_hash(&other));
    }

    #[test]
    fn policy_builders() {
        let p = CheckpointPolicy::new("/tmp/x")
            .every_events(100)
            .every_sim_time(SimDuration::from_secs(2))
            .retain_all();
        assert_eq!(p.every_events, Some(100));
        assert_eq!(p.every_sim_time, Some(SimDuration::from_secs(2)));
        assert!(p.retain_all);
        assert!(p.die_at_event.is_none());
    }
}
