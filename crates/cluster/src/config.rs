//! Scenario configuration: everything needed to reproduce one run.

use pythia_baselines::HederaConfig;
use pythia_core::PythiaConfig;
use pythia_des::SimDuration;
use pythia_hadoop::HadoopConfig;
use pythia_netsim::{BackgroundProfile, OverSubscription, TopologySpec};
use pythia_openflow::ControllerConfig;
use pythia_trace::TraceConfig;

/// Which flow scheduler manages shuffle traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Random load-unaware 5-tuple hashing (the paper's baseline).
    Ecmp,
    /// The full Pythia system: prediction + SDN path installation.
    Pythia,
    /// Hedera-like reactive elephant rerouting (ablation).
    Hedera,
}

impl SchedulerKind {
    /// Short lower-case label used in reports and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Ecmp => "ecmp",
            SchedulerKind::Pythia => "pythia",
            SchedulerKind::Hedera => "hedera",
        }
    }
}

/// A scheduled trunk-cable fault (fails both directions of the cable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Which trunk cable (duplex pair index) fails.
    pub trunk_cable: usize,
    /// When it fails, relative to job start.
    pub fail_at: SimDuration,
    /// When it comes back, if ever.
    pub restore_at: Option<SimDuration>,
}

/// A scheduled SDN-controller outage. While the controller is down no
/// rules can be installed or modified — in-flight installs are lost and
/// newly aggregated flows ride default ECMP. Installed dataplane rules
/// survive (switches keep forwarding without their controller). On
/// recovery the controller resyncs from collector state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerOutage {
    /// When the controller crashes, relative to run start.
    pub down_at: SimDuration,
    /// When it comes back.
    pub up_at: SimDuration,
}

/// A complete, reproducible scenario description.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Cluster/network shape — the paper's multi-rack reference fabric
    /// or a parameterized fat-tree (`TopologySpec::FatTree`).
    pub topology: TopologySpec,
    /// Over-subscription ratio 1:N emulated by background traffic.
    pub oversubscription: OverSubscription,
    /// How the background load moves across parallel trunks over time.
    pub background: BackgroundProfile,
    /// The flow scheduler under test.
    pub scheduler: SchedulerKind,
    /// Hadoop framework knobs.
    pub hadoop: HadoopConfig,
    /// Pythia knobs (used when `scheduler` is Pythia).
    pub pythia: PythiaConfig,
    /// SDN controller knobs.
    pub controller: ControllerConfig,
    /// Hedera knobs (used when `scheduler` is Hedera).
    pub hedera: HederaConfig,
    /// Wildcard TCAM capacity per switch.
    pub tcam_capacity: usize,
    /// NetFlow probe sampling period.
    pub probe_period: SimDuration,
    /// Controller link-load update period.
    pub link_load_period: SimDuration,
    /// Scheduled trunk-cable faults (fault-tolerance experiments; §IV's
    /// "the routing graph is updated at the event of link or switch
    /// failure").
    pub link_faults: Vec<LinkFault>,
    /// Scheduled SDN-controller outages (chaos experiments).
    pub controller_outages: Vec<ControllerOutage>,
    /// Instants at which every instrumentation middleware restarts and
    /// replays the spill indices still on disk (exercises end-to-end
    /// idempotent delivery).
    pub agent_respill_at: Vec<SimDuration>,
    /// Flight-recorder configuration. Disabled by default — the recorder
    /// then costs one branch per instrumentation site.
    pub trace: TraceConfig,
    /// Master seed: drives task jitter, ECMP hash salt, install latencies,
    /// wire-overhead sampling.
    pub seed: u64,
    /// Watchdog: abort if simulated time exceeds this.
    pub max_sim_time: SimDuration,
    /// Watchdog: abort if event count exceeds this.
    pub max_events: u64,
    /// Use the order-independent (relaxed-order) rate solver: lazy byte
    /// integration, component-parallel fair-share solves and deferred
    /// recomputes. Results agree with the exact path within
    /// [`RELAXED_COMPLETION_EPS`]/[`RELAXED_CURVE_EPS`] but are not
    /// byte-identical to it. Defaults to the `relaxed-order` cargo
    /// feature so the whole test suite can be swept both ways.
    pub relaxed_order: bool,
    /// Worker threads for component-parallel solves (relaxed mode only).
    /// 0 = auto (available parallelism, capped at 8). Any fixed value
    /// gives bitwise run-to-run reproducible results; auto is
    /// reproducible per machine.
    pub solver_workers: usize,
    /// Hard cap on how long a rate recompute may be deferred past the
    /// first flow mutation / rule install that dirtied the network
    /// (relaxed mode only). Larger values collapse more solver work but
    /// let stale rates ride longer, loosening the achieved tolerance.
    pub relaxed_defer_max: SimDuration,
    /// Stream jobs through the engine (fleet mode): job state is
    /// materialized at its `JobStart` event and retired — heavy Hadoop
    /// simulation state dropped, the timeline kept for reporting — at
    /// completion, so a long arrival trace holds memory proportional to
    /// *concurrent* jobs, not total jobs. Off (the default) preserves the
    /// historical construct-everything-up-front behaviour byte-for-byte.
    pub stream_jobs: bool,
    /// Shard the Pythia collector/allocator per pod: predictions from a
    /// server aggregate in its pod's shard (pod-local state, no
    /// fleet-wide scans per prediction). `1` (the default) is exactly the
    /// historical single collector — byte-identical fingerprints.
    pub collector_shards: usize,
    /// Batch Pythia rule installs per pod per epoch: placements buffer
    /// and one batched install per pod goes to the switches each epoch,
    /// instead of a per-prediction install stream. `None` (the default)
    /// keeps per-prediction installs.
    pub install_epoch: Option<SimDuration>,
    /// Perturbation budget for deferred solves (relaxed mode only): each
    /// deferred mutation is weighted by the relative rate error it is
    /// estimated to leave behind (~1/N for one of N concurrent fetches
    /// starting, completing, or moving; 1.0 for a background redraw or
    /// link fault), and a solve is forced once the accumulated weight
    /// crosses this fraction. Sparse scenarios — where every completion
    /// is a large rate shift — therefore solve nearly eagerly and track
    /// the exact path tightly, while dense shuffles collapse dozens of
    /// sub-percent nudges into one solve. The published tolerance is
    /// calibrated against the default value via the deterministic
    /// tolerance refcheck — raise it only with that gate green.
    pub relaxed_defer_frac: f64,
    /// Wave-batch fetch starts: fetches fired by one Hadoop output batch
    /// (a shuffle wave — dozens per reducer launch) are drained through
    /// one batched fast path, amortizing per-fetch overhead (span and
    /// trace plumbing, per-fetch seed mixing, path-cache probes) across
    /// the wave. Byte-identical to the per-fetch path in exact mode —
    /// fetch starts push no events and draw no randomness, so deferring
    /// them to the end of their Hadoop batch preserves queue sequencing,
    /// RNG draw order, and flow-id assignment exactly; a batch of one is
    /// the historical path. On by default; `false` keeps the per-fetch
    /// code path (the wave-equivalence proptest sweeps both).
    pub wave_batch: bool,
}

/// Relative tolerance on per-flow completion times in relaxed-order mode
/// (plus [`RELAXED_ABS_EPS_SECS`] absolute slack for early/short flows).
///
/// The runs are seeded and deterministic, so the drift is a fixed number,
/// not a statistic: at the default `relaxed_defer_frac` the worst
/// completion drift measured on the Pythia refcheck scenarios is ~0.27s
/// on multi-second flows, against a bound of `0.25 + 0.05·exact ≥ 0.55s`
/// — roughly 2x margin.
pub const RELAXED_COMPLETION_EPS: f64 = 0.05;

/// Absolute slack on completion-time comparisons, in seconds. Covers
/// sub-second flows where a relative bound is meaninglessly tight.
pub const RELAXED_ABS_EPS_SECS: f64 = 0.25;

/// Relative tolerance on probe-curve values in relaxed-order mode, as a
/// fraction of the source's total transferred bytes.
pub const RELAXED_CURVE_EPS: f64 = 0.05;

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            topology: TopologySpec::default(),
            oversubscription: OverSubscription::NONE,
            background: BackgroundProfile::default(),
            scheduler: SchedulerKind::Ecmp,
            hadoop: HadoopConfig::default(),
            pythia: PythiaConfig::default(),
            controller: ControllerConfig::default(),
            hedera: HederaConfig::default(),
            tcam_capacity: 2000,
            probe_period: SimDuration::from_millis(500),
            link_load_period: SimDuration::from_secs(1),
            link_faults: Vec::new(),
            controller_outages: Vec::new(),
            agent_respill_at: Vec::new(),
            trace: TraceConfig::disabled(),
            seed: 1,
            max_sim_time: SimDuration::from_secs(24 * 3600),
            max_events: 50_000_000,
            relaxed_order: cfg!(feature = "relaxed-order"),
            solver_workers: 0,
            stream_jobs: false,
            collector_shards: 1,
            install_epoch: None,
            relaxed_defer_max: SimDuration::from_millis(1000),
            relaxed_defer_frac: 0.25,
            wave_batch: true,
        }
    }
}

impl ScenarioConfig {
    /// Set the flow scheduler.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Stream jobs through the engine (fleet mode): lazy materialization
    /// at `JobStart`, retirement at completion.
    pub fn with_stream_jobs(mut self, on: bool) -> Self {
        self.stream_jobs = on;
        self
    }

    /// Shard the Pythia collector per pod (`1` = the historical single
    /// collector).
    pub fn with_collector_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one collector shard");
        self.collector_shards = shards;
        self
    }

    /// Batch Pythia rule installs per pod on this epoch period.
    pub fn with_install_epoch(mut self, epoch: SimDuration) -> Self {
        assert!(epoch > SimDuration::ZERO, "install epoch must be positive");
        self.install_epoch = Some(epoch);
        self
    }

    /// Set the over-subscription ratio to 1:`n`.
    pub fn with_oversubscription(mut self, n: u32) -> Self {
        self.oversubscription = OverSubscription(n);
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the fabric (anything convertible into a [`TopologySpec`]:
    /// `MultiRackParams` or `FatTreeParams`).
    pub fn with_topology(mut self, spec: impl Into<TopologySpec>) -> Self {
        self.topology = spec.into();
        self
    }

    /// Set the flight-recorder configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Select the relaxed-order solver (or pin the exact byte-identical
    /// path with `false`, overriding the `relaxed-order` cargo feature).
    pub fn with_relaxed_order(mut self, on: bool) -> Self {
        self.relaxed_order = on;
        self
    }

    /// Wave-batch fetch starts (`true`, the default) or keep the
    /// historical per-fetch start path (`false`) — the two are
    /// byte-identical in exact mode; the equivalence proptest pins it.
    pub fn with_wave_batch(mut self, on: bool) -> Self {
        self.wave_batch = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = ScenarioConfig::default()
            .with_scheduler(SchedulerKind::Pythia)
            .with_oversubscription(20)
            .with_seed(7)
            .with_trace(TraceConfig::enabled());
        assert_eq!(c.scheduler, SchedulerKind::Pythia);
        assert_eq!(c.oversubscription, OverSubscription(20));
        assert_eq!(c.seed, 7);
        assert!(c.trace.enabled);
        assert!(!ScenarioConfig::default().trace.enabled);
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::Ecmp.label(), "ecmp");
        assert_eq!(SchedulerKind::Pythia.label(), "pythia");
        assert_eq!(SchedulerKind::Hedera.label(), "hedera");
    }
}
