//! Scenario configuration: everything needed to reproduce one run.

use pythia_baselines::HederaConfig;
use pythia_core::PythiaConfig;
use pythia_des::SimDuration;
use pythia_hadoop::HadoopConfig;
use pythia_netsim::{BackgroundProfile, OverSubscription, TopologySpec};
use pythia_openflow::ControllerConfig;
use pythia_trace::TraceConfig;

/// Which flow scheduler manages shuffle traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Random load-unaware 5-tuple hashing (the paper's baseline).
    Ecmp,
    /// The full Pythia system: prediction + SDN path installation.
    Pythia,
    /// Hedera-like reactive elephant rerouting (ablation).
    Hedera,
}

impl SchedulerKind {
    /// Short lower-case label used in reports and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Ecmp => "ecmp",
            SchedulerKind::Pythia => "pythia",
            SchedulerKind::Hedera => "hedera",
        }
    }
}

/// A scheduled trunk-cable fault (fails both directions of the cable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Which trunk cable (duplex pair index) fails.
    pub trunk_cable: usize,
    /// When it fails, relative to job start.
    pub fail_at: SimDuration,
    /// When it comes back, if ever.
    pub restore_at: Option<SimDuration>,
}

/// A scheduled SDN-controller outage. While the controller is down no
/// rules can be installed or modified — in-flight installs are lost and
/// newly aggregated flows ride default ECMP. Installed dataplane rules
/// survive (switches keep forwarding without their controller). On
/// recovery the controller resyncs from collector state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerOutage {
    /// When the controller crashes, relative to run start.
    pub down_at: SimDuration,
    /// When it comes back.
    pub up_at: SimDuration,
}

/// A complete, reproducible scenario description.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Cluster/network shape — the paper's multi-rack reference fabric
    /// or a parameterized fat-tree (`TopologySpec::FatTree`).
    pub topology: TopologySpec,
    /// Over-subscription ratio 1:N emulated by background traffic.
    pub oversubscription: OverSubscription,
    /// How the background load moves across parallel trunks over time.
    pub background: BackgroundProfile,
    /// The flow scheduler under test.
    pub scheduler: SchedulerKind,
    /// Hadoop framework knobs.
    pub hadoop: HadoopConfig,
    /// Pythia knobs (used when `scheduler` is Pythia).
    pub pythia: PythiaConfig,
    /// SDN controller knobs.
    pub controller: ControllerConfig,
    /// Hedera knobs (used when `scheduler` is Hedera).
    pub hedera: HederaConfig,
    /// Wildcard TCAM capacity per switch.
    pub tcam_capacity: usize,
    /// NetFlow probe sampling period.
    pub probe_period: SimDuration,
    /// Controller link-load update period.
    pub link_load_period: SimDuration,
    /// Scheduled trunk-cable faults (fault-tolerance experiments; §IV's
    /// "the routing graph is updated at the event of link or switch
    /// failure").
    pub link_faults: Vec<LinkFault>,
    /// Scheduled SDN-controller outages (chaos experiments).
    pub controller_outages: Vec<ControllerOutage>,
    /// Instants at which every instrumentation middleware restarts and
    /// replays the spill indices still on disk (exercises end-to-end
    /// idempotent delivery).
    pub agent_respill_at: Vec<SimDuration>,
    /// Flight-recorder configuration. Disabled by default — the recorder
    /// then costs one branch per instrumentation site.
    pub trace: TraceConfig,
    /// Master seed: drives task jitter, ECMP hash salt, install latencies,
    /// wire-overhead sampling.
    pub seed: u64,
    /// Watchdog: abort if simulated time exceeds this.
    pub max_sim_time: SimDuration,
    /// Watchdog: abort if event count exceeds this.
    pub max_events: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            topology: TopologySpec::default(),
            oversubscription: OverSubscription::NONE,
            background: BackgroundProfile::default(),
            scheduler: SchedulerKind::Ecmp,
            hadoop: HadoopConfig::default(),
            pythia: PythiaConfig::default(),
            controller: ControllerConfig::default(),
            hedera: HederaConfig::default(),
            tcam_capacity: 2000,
            probe_period: SimDuration::from_millis(500),
            link_load_period: SimDuration::from_secs(1),
            link_faults: Vec::new(),
            controller_outages: Vec::new(),
            agent_respill_at: Vec::new(),
            trace: TraceConfig::disabled(),
            seed: 1,
            max_sim_time: SimDuration::from_secs(24 * 3600),
            max_events: 50_000_000,
        }
    }
}

impl ScenarioConfig {
    /// Set the flow scheduler.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Set the over-subscription ratio to 1:`n`.
    pub fn with_oversubscription(mut self, n: u32) -> Self {
        self.oversubscription = OverSubscription(n);
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the fabric (anything convertible into a [`TopologySpec`]:
    /// `MultiRackParams` or `FatTreeParams`).
    pub fn with_topology(mut self, spec: impl Into<TopologySpec>) -> Self {
        self.topology = spec.into();
        self
    }

    /// Set the flight-recorder configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = ScenarioConfig::default()
            .with_scheduler(SchedulerKind::Pythia)
            .with_oversubscription(20)
            .with_seed(7)
            .with_trace(TraceConfig::enabled());
        assert_eq!(c.scheduler, SchedulerKind::Pythia);
        assert_eq!(c.oversubscription, OverSubscription(20));
        assert_eq!(c.seed, 7);
        assert!(c.trace.enabled);
        assert!(!ScenarioConfig::default().trace.enabled);
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::Ecmp.label(), "ecmp");
        assert_eq!(SchedulerKind::Pythia.label(), "pythia");
        assert_eq!(SchedulerKind::Hedera.label(), "hedera");
    }
}
