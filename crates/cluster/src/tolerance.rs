//! Tolerance comparison between an exact-order and a relaxed-order run.
//!
//! The relaxed solver trades bit-exactness for speed: deferred fair-share
//! solves let stale rates ride for up to
//! [`crate::config::ScenarioConfig::relaxed_defer_max`], so per-flow
//! completion times and probe curves drift within a bounded envelope
//! instead of matching byte-for-byte. This module quantifies that drift
//! and checks it against the published bounds
//! ([`RELAXED_COMPLETION_EPS`], [`RELAXED_ABS_EPS_SECS`],
//! [`RELAXED_CURVE_EPS`]): run the same scenario both ways, match flows
//! by their `(src, dst, wire bytes)` key, and compare completion times
//! and cumulative curves.

use std::collections::BTreeMap;

use pythia_des::SimTime;

use crate::config::{RELAXED_ABS_EPS_SECS, RELAXED_COMPLETION_EPS, RELAXED_CURVE_EPS};
use crate::report::RunReport;

/// Result of comparing a relaxed-order run against its exact reference.
#[derive(Debug, Clone, Default)]
pub struct ToleranceReport {
    /// Flows matched between the two runs.
    pub flows_compared: usize,
    /// Largest absolute completion-time difference, seconds.
    pub max_abs_err_secs: f64,
    /// Largest completion-time difference relative to the exact flow's
    /// end time, over flows whose absolute error exceeds the absolute
    /// slack.
    pub max_rel_err: f64,
    /// Curve points compared (at the relaxed run's own sample instants).
    pub curve_points_compared: usize,
    /// Largest curve divergence as a fraction of the source's exact
    /// total transferred bytes.
    pub max_curve_err_frac: f64,
    /// Human-readable descriptions of every tolerance violation.
    pub violations: Vec<String>,
}

impl ToleranceReport {
    /// Whether every compared quantity stayed within the published bounds.
    pub fn within_bounds(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs and the refcheck example.
    pub fn summary(&self) -> String {
        format!(
            "flows={} max_abs_err={:.4}s max_rel_err={:.4} curve_points={} \
             max_curve_err={:.4} violations={}",
            self.flows_compared,
            self.max_abs_err_secs,
            self.max_rel_err,
            self.curve_points_compared,
            self.max_curve_err_frac,
            self.violations.len(),
        )
    }
}

/// Compare a relaxed-order run against its exact-order reference.
///
/// Flows are matched by `(src_node, dst_node, wire_bytes)` — the wire
/// volume of a fetch is a pure function of its (map, reducer, seed), so
/// the key is identical across solver modes, unlike the copier's
/// ephemeral port, which is allocated in fetch-start order and therefore
/// schedule-dependent. Both runs execute the same logical fetches, so
/// the multisets must agree (a mismatch is itself reported as a
/// violation). Completion times must satisfy `|relaxed − exact| ≤
/// RELAXED_ABS_EPS_SECS + RELAXED_COMPLETION_EPS · exact`. Measured
/// curves are compared at the relaxed run's own sample instants — where
/// its lazy integration is fresh — normalized by the exact curve's
/// total.
pub fn compare_tolerance(exact: &RunReport, relaxed: &RunReport) -> ToleranceReport {
    compare(exact, relaxed, true)
}

/// Compare a relaxed-order run against its exact-order reference on
/// conservation invariants only: the multiset of logical fetches and the
/// total bytes moved per source must agree, but per-flow completion
/// times and curve shapes are reported without being held to the epsilon
/// bounds.
///
/// This is the right check for hash-routed schedulers (ECMP, Hedera):
/// their path choice hashes the flow 5-tuple, and the copier's ephemeral
/// port is allocated in fetch-start order — so the first completion-order
/// flip the relaxed solver introduces rehashes downstream flows onto
/// different trunks, and the divergence cascades without bound. That is
/// a property of hash routing under schedule perturbation, not solver
/// error; what the solver must still guarantee is that every fetch runs,
/// moves exactly its wire bytes, and the run terminates.
pub fn compare_conservation(exact: &RunReport, relaxed: &RunReport) -> ToleranceReport {
    compare(exact, relaxed, false)
}

/// Shared comparison body. `strict` gates the epsilon assertions:
/// completion-time and curve-envelope violations are only recorded when
/// set, while conservation violations (flow multisets, per-source byte
/// totals) are always recorded. Drift maxima are measured either way so
/// non-strict callers still see how far the run wandered.
fn compare(exact: &RunReport, relaxed: &RunReport, strict: bool) -> ToleranceReport {
    let mut rep = ToleranceReport::default();

    // Group completion times per key; a key can recur (equal-sized
    // fetches between the same endpoints), so compare sorted lists —
    // pairing the k-th fastest with the k-th fastest.
    type Key = (u32, u32, u64);
    let group = |r: &RunReport| -> BTreeMap<Key, Vec<f64>> {
        let mut m: BTreeMap<Key, Vec<f64>> = BTreeMap::new();
        for f in r.flow_trace.records() {
            m.entry((f.src_node, f.dst_node, f.bytes.round() as u64))
                .or_default()
                .push(f.end_secs);
        }
        for v in m.values_mut() {
            v.sort_by(f64::total_cmp);
        }
        m
    };
    let ge = group(exact);
    let gr = group(relaxed);
    if ge.len() != gr.len() || exact.flow_trace.len() != relaxed.flow_trace.len() {
        rep.violations.push(format!(
            "flow sets differ: exact {} flows / {} tuples, relaxed {} flows / {} tuples",
            exact.flow_trace.len(),
            ge.len(),
            relaxed.flow_trace.len(),
            gr.len(),
        ));
    }
    for (key, ends_e) in &ge {
        let Some(ends_r) = gr.get(key) else {
            rep.violations
                .push(format!("tuple {key:?} missing from relaxed run"));
            continue;
        };
        if ends_e.len() != ends_r.len() {
            rep.violations.push(format!(
                "tuple {key:?}: {} exact flows vs {} relaxed",
                ends_e.len(),
                ends_r.len()
            ));
            continue;
        }
        for (&e, &r) in ends_e.iter().zip(ends_r) {
            rep.flows_compared += 1;
            let abs = (r - e).abs();
            rep.max_abs_err_secs = rep.max_abs_err_secs.max(abs);
            if abs > RELAXED_ABS_EPS_SECS {
                let rel = abs / e.max(f64::MIN_POSITIVE);
                rep.max_rel_err = rep.max_rel_err.max(rel);
            }
            if strict && abs > RELAXED_ABS_EPS_SECS + RELAXED_COMPLETION_EPS * e {
                rep.violations.push(format!(
                    "flow {key:?}: completion {r:.6}s vs exact {e:.6}s \
                     (err {abs:.6}s > {RELAXED_ABS_EPS_SECS} + {RELAXED_COMPLETION_EPS}·exact)",
                ));
            }
        }
    }

    // Curves: evaluate both step curves at the relaxed run's sample
    // instants and normalize by the exact total for that source. A
    // cumulative counter is a monotone step function whose jumps sit at
    // flow events; relaxed mode is allowed to shift those events within
    // the completion-time envelope, and a jump shifted by even a
    // microsecond would read as the full jump height if curves were
    // compared at exact instants. So each relaxed point is compared
    // against the exact curve's *range* over `t ± δ` (the envelope at
    // `t`): only the distance outside `[value_at(t−δ), value_at(t+δ)]`
    // counts as divergence.
    for (node, ce) in &exact.measured_curves {
        let Some(cr) = relaxed.measured_curves.get(node) else {
            rep.violations
                .push(format!("node {node:?} curve missing from relaxed run"));
            continue;
        };
        let total = ce.total().max(1.0);
        for &(t, v) in cr.points() {
            rep.curve_points_compared += 1;
            let secs = t.as_secs_f64();
            let delta = RELAXED_ABS_EPS_SECS + RELAXED_COMPLETION_EPS * secs;
            let lo = ce.value_at(SimTime::from_secs_f64((secs - delta).max(0.0)));
            let hi = ce.value_at(SimTime::from_secs_f64(secs + delta));
            let err = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            let frac = err / total;
            rep.max_curve_err_frac = rep.max_curve_err_frac.max(frac);
            if strict && frac > RELAXED_CURVE_EPS {
                rep.violations.push(format!(
                    "node {node:?} curve at {t}: relaxed {v:.0} outside exact \
                     [{lo:.0}, {hi:.0}] ({frac:.4} of total > {RELAXED_CURVE_EPS})",
                ));
            }
        }
        // Totals must agree almost exactly: lazy integration defers
        // bookkeeping but conserves bytes.
        let dtot = (cr.total() - ce.total()).abs() / total;
        if dtot > 1e-6 {
            rep.violations.push(format!(
                "node {node:?} total bytes differ: relaxed {:.0} vs exact {:.0}",
                cr.total(),
                ce.total()
            ));
        }
    }
    rep
}
