//! The central prediction collector.
//!
//! Receives [`PredictionMsg`]s from every server's instrumentation (over
//! the management network) and turns them into **aggregated server-pair
//! transfers** (§IV): all flows from one mapper server to one reducer
//! server are summed into a single entry, because a shuffle flow's TCP
//! port cannot be known at prediction time — rules must be installable at
//! server-pair granularity.
//!
//! Two Hadoop realities the collector absorbs (§III):
//! * **Unknown reducer destinations** — reducers are scheduled only after
//!   the slow-start threshold, so early predictions carry reducer indices
//!   with no location yet. Those entries are parked and completed by the
//!   collector thread the moment the reducer-launch event arrives.
//! * **Mapper/reducer → network location resolution** — Hadoop task ids
//!   are translated to network node ids via the server map given at
//!   construction.

use std::collections::BTreeMap;

use pythia_des::SimTime;
use pythia_hadoop::{JobId, MapTaskId, ReducerId, ServerId};
use pythia_netsim::{CumulativeCurve, NodeId};

use crate::instrument::PredictionMsg;

/// An increment of predicted demand on one server pair, ready for the
/// flow allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregatedDemand {
    /// Mapper-side network node.
    pub src: NodeId,
    /// Reducer-side network node.
    pub dst: NodeId,
    /// Newly predicted wire bytes for this pair.
    pub added_bytes: u64,
}

/// One parked per-reducer prediction entry awaiting reducer location.
#[derive(Debug, Clone, Copy)]
struct PendingEntry {
    job: JobId,
    map: MapTaskId,
    src: ServerId,
    reducer: ReducerId,
    bytes: u64,
}

/// The collector state machine.
pub struct Collector {
    /// Hadoop server id → network node.
    server_nodes: Vec<NodeId>,
    /// Known reducer locations (hadoop server ids), per job.
    reducer_loc: BTreeMap<(JobId, ReducerId), ServerId>,
    /// Predictions whose reducer location is not yet known.
    pending: Vec<PendingEntry>,
    /// Predicted wire bytes per (job, map, reducer), for exact draining
    /// when a fetch completes.
    predicted_fetch: BTreeMap<(JobId, MapTaskId, ReducerId), u64>,
    /// Outstanding predicted bytes per (src node, dst node), remote only.
    outstanding: BTreeMap<(NodeId, NodeId), u64>,
    /// Cumulative predicted remote traffic per source node over time —
    /// Pythia's side of the Figure 5 comparison.
    predicted_curves: BTreeMap<NodeId, (f64, CumulativeCurve)>,
    /// Prediction messages ingested.
    pub predictions_received: u64,
    /// Per-reducer entries parked for unknown destinations.
    pub entries_parked: u64,
}

impl Collector {
    /// A collector where Hadoop server `i` lives on `server_nodes[i]`.
    pub fn new(server_nodes: Vec<NodeId>) -> Self {
        Collector {
            server_nodes,
            reducer_loc: BTreeMap::new(),
            pending: Vec::new(),
            predicted_fetch: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            predicted_curves: BTreeMap::new(),
            predictions_received: 0,
            entries_parked: 0,
        }
    }

    /// Resolve a Hadoop server id to its network node.
    pub fn node_of(&self, s: ServerId) -> NodeId {
        self.server_nodes[s.0 as usize]
    }

    /// A prediction message arrived (management-network latency already
    /// applied by the caller). Returns newly aggregated demands for every
    /// reducer whose location is known; parks the rest.
    pub fn on_prediction(&mut self, now: SimTime, msg: &PredictionMsg) -> Vec<AggregatedDemand> {
        self.predictions_received += 1;
        let mut out = Vec::new();
        for (r_idx, &bytes) in msg.per_reducer_bytes.iter().enumerate() {
            let reducer = ReducerId(r_idx as u32);
            let entry = PendingEntry {
                job: msg.job,
                map: msg.map,
                src: msg.src_server,
                reducer,
                bytes,
            };
            match self.reducer_loc.get(&(msg.job, reducer)).copied() {
                Some(loc) => {
                    if let Some(d) = self.commit(now, entry, loc) {
                        out.push(d);
                    }
                }
                None => {
                    self.pending.push(entry);
                    self.entries_parked += 1;
                }
            }
        }
        Self::coalesce(out)
    }

    /// Reducer-launch event observed: fill in every parked entry for this
    /// reducer.
    pub fn on_reducer_location(
        &mut self,
        now: SimTime,
        job: JobId,
        reducer: ReducerId,
        server: ServerId,
    ) -> Vec<AggregatedDemand> {
        self.reducer_loc.insert((job, reducer), server);
        let mut out = Vec::new();
        let mut still = Vec::with_capacity(self.pending.len());
        for entry in std::mem::take(&mut self.pending) {
            if entry.job == job && entry.reducer == reducer {
                if let Some(d) = self.commit(now, entry, server) {
                    out.push(d);
                }
            } else {
                still.push(entry);
            }
        }
        self.pending = still;
        Self::coalesce(out)
    }

    /// Fold one resolved entry into the aggregates. Local transfers
    /// (mapper and reducer on the same server) never touch the network:
    /// recorded for exactness but produce no demand.
    fn commit(
        &mut self,
        now: SimTime,
        entry: PendingEntry,
        reducer_server: ServerId,
    ) -> Option<AggregatedDemand> {
        self.predicted_fetch
            .insert((entry.job, entry.map, entry.reducer), entry.bytes);
        let src = self.node_of(entry.src);
        let dst = self.node_of(reducer_server);
        if src == dst || entry.bytes == 0 {
            return None;
        }
        *self.outstanding.entry((src, dst)).or_insert(0) += entry.bytes;
        let (total, curve) = self
            .predicted_curves
            .entry(src)
            .or_insert_with(|| (0.0, CumulativeCurve::default()));
        *total += entry.bytes as f64;
        let t = *total;
        curve.push(now, t);
        Some(AggregatedDemand {
            src,
            dst,
            added_bytes: entry.bytes,
        })
    }

    /// Merge demands that share a server pair (one message can carry
    /// several reducers living on the same server).
    fn coalesce(demands: Vec<AggregatedDemand>) -> Vec<AggregatedDemand> {
        let mut merged: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        for d in demands {
            *merged.entry((d.src, d.dst)).or_insert(0) += d.added_bytes;
        }
        merged
            .into_iter()
            .map(|((src, dst), added_bytes)| AggregatedDemand {
                src,
                dst,
                added_bytes,
            })
            .collect()
    }

    /// A fetch completed: drain its predicted contribution from the pair's
    /// outstanding volume. Returns the (pair, drained bytes) if the fetch
    /// was remote and predicted.
    pub fn on_fetch_completed(
        &mut self,
        job: JobId,
        map: MapTaskId,
        reducer: ReducerId,
        src: ServerId,
        dst: ServerId,
    ) -> Option<((NodeId, NodeId), u64)> {
        let bytes = self.predicted_fetch.remove(&(job, map, reducer))?;
        let pair = (self.node_of(src), self.node_of(dst));
        if pair.0 == pair.1 || bytes == 0 {
            return None;
        }
        let o = self.outstanding.entry(pair).or_insert(0);
        *o = o.saturating_sub(bytes);
        Some((pair, bytes))
    }

    /// Outstanding predicted bytes for a pair.
    pub fn outstanding(&self, src: NodeId, dst: NodeId) -> u64 {
        self.outstanding.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Number of parked (unknown-destination) entries.
    pub fn parked(&self) -> usize {
        self.pending.len()
    }

    /// Predicted cumulative remote-traffic curve for `node` (Figure 5).
    pub fn predicted_curve(&self, node: NodeId) -> Option<&CumulativeCurve> {
        self.predicted_curves.get(&node).map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(map: u32, src: u32, bytes: Vec<u64>, at_secs: u64) -> PredictionMsg {
        PredictionMsg {
            job: JobId(0),
            map: MapTaskId(map),
            src_server: ServerId(src),
            per_reducer_bytes: bytes,
            predicted_at: SimTime::from_secs(at_secs),
        }
    }

    fn collector() -> Collector {
        // server i lives on node 10+i.
        Collector::new((0..4).map(|i| NodeId(10 + i)).collect())
    }

    #[test]
    fn known_reducer_aggregates_immediately() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        let d = c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        assert_eq!(
            d,
            vec![AggregatedDemand {
                src: NodeId(10),
                dst: NodeId(11),
                added_bytes: 500
            }]
        );
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 500);
    }

    #[test]
    fn unknown_reducer_parks_until_launch() {
        let mut c = collector();
        let d = c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        assert!(d.is_empty());
        assert_eq!(c.parked(), 1);
        // Launch fills the parked entry.
        let d2 = c.on_reducer_location(SimTime::from_secs(2), JobId(0), ReducerId(0), ServerId(2));
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].dst, NodeId(12));
        assert_eq!(c.parked(), 0);
        assert_eq!(c.outstanding(NodeId(10), NodeId(12)), 500);
    }

    #[test]
    fn local_transfers_produce_no_demand() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(0));
        let d = c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        assert!(d.is_empty(), "mapper and reducer co-located");
        assert_eq!(c.outstanding(NodeId(10), NodeId(10)), 0);
    }

    #[test]
    fn same_pair_reducers_coalesce() {
        let mut c = collector();
        // Reducers 0 and 1 both on server 1.
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(1), ServerId(1));
        let d = c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![300, 200], 0));
        assert_eq!(d.len(), 1, "one aggregated entry per server pair");
        assert_eq!(d[0].added_bytes, 500);
    }

    #[test]
    fn fetch_completion_drains_exactly() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        c.on_prediction(SimTime::ZERO, &msg(1, 0, vec![300], 0));
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 800);
        let drained = c
            .on_fetch_completed(
                JobId(0),
                MapTaskId(0),
                ReducerId(0),
                ServerId(0),
                ServerId(1),
            )
            .unwrap();
        assert_eq!(drained, ((NodeId(10), NodeId(11)), 500));
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 300);
        // Unknown fetch: None.
        assert!(c
            .on_fetch_completed(
                JobId(0),
                MapTaskId(9),
                ReducerId(0),
                ServerId(0),
                ServerId(1)
            )
            .is_none());
    }

    #[test]
    fn predicted_curve_steps_at_commit_times() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![100], 1));
        c.on_prediction(SimTime::from_secs(3), &msg(1, 0, vec![200], 3));
        let curve = c.predicted_curve(NodeId(10)).unwrap();
        assert_eq!(curve.value_at(SimTime::from_secs(1)), 100.0);
        assert_eq!(curve.value_at(SimTime::from_secs(2)), 100.0);
        assert_eq!(curve.value_at(SimTime::from_secs(3)), 300.0);
    }

    #[test]
    fn park_then_resolve_timestamps_curve_at_resolution() {
        let mut c = collector();
        c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![100], 1));
        assert!(c.predicted_curve(NodeId(10)).is_none());
        c.on_reducer_location(SimTime::from_secs(5), JobId(0), ReducerId(0), ServerId(1));
        let curve = c.predicted_curve(NodeId(10)).unwrap();
        assert_eq!(curve.value_at(SimTime::from_secs(4)), 0.0);
        assert_eq!(curve.value_at(SimTime::from_secs(5)), 100.0);
    }
}
