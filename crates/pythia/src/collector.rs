//! The central prediction collector.
//!
//! Receives [`PredictionMsg`]s from every server's instrumentation (over
//! the management network) and turns them into **aggregated server-pair
//! transfers** (§IV): all flows from one mapper server to one reducer
//! server are summed into a single entry, because a shuffle flow's TCP
//! port cannot be known at prediction time — rules must be installable at
//! server-pair granularity.
//!
//! Two Hadoop realities the collector absorbs (§III):
//! * **Unknown reducer destinations** — reducers are scheduled only after
//!   the slow-start threshold, so early predictions carry reducer indices
//!   with no location yet. Those entries are parked and completed by the
//!   collector thread the moment the reducer-launch event arrives.
//! * **Mapper/reducer → network location resolution** — Hadoop task ids
//!   are translated to network node ids via the server map given at
//!   construction.
//!
//! The management network is a datagram channel ([`crate::mgmtnet`]), so
//! ingestion must be **idempotent**: predictions are keyed by
//! `(job, map)`, re-sent or duplicated copies from the same server are
//! dropped, and a copy from a *different* server means Hadoop re-executed
//! the map task (failure or speculation) — the old prediction is retracted
//! before the new one is ingested. Entries parked for a reducer that never
//! launches can be expired by a TTL sweep.

use std::collections::BTreeMap;
use std::fmt;

use pythia_des::{SimDuration, SimTime};
use pythia_hadoop::{JobId, MapTaskId, ReducerId, ServerId};
use pythia_netsim::{CumulativeCurve, NodeId};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};

use crate::instrument::PredictionMsg;

/// An increment of predicted demand on one server pair, ready for the
/// flow allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregatedDemand {
    /// Mapper-side network node.
    pub src: NodeId,
    /// Reducer-side network node.
    pub dst: NodeId,
    /// Newly predicted wire bytes for this pair.
    pub added_bytes: u64,
}

/// A prediction referenced a server id outside the cluster map — a
/// malformed or corrupted message that must be dropped, not indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownServer(pub ServerId);

impl fmt::Display for UnknownServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown server id {:?} in prediction", self.0)
    }
}

impl std::error::Error for UnknownServer {}

/// Everything one ingested prediction message implies for the allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictionOutcome {
    /// Newly aggregated demand increments (reducer location known).
    pub demands: Vec<AggregatedDemand>,
    /// Volumes withdrawn because a re-executed map task invalidated its
    /// earlier prediction: the allocator must drain these.
    pub retracted: Vec<((NodeId, NodeId), u64)>,
}

/// One parked per-reducer prediction entry awaiting reducer location.
#[derive(Debug, Clone, Copy)]
struct PendingEntry {
    job: JobId,
    map: MapTaskId,
    src: ServerId,
    reducer: ReducerId,
    bytes: u64,
    /// When the entry was parked, for TTL expiry.
    parked_at: SimTime,
}

/// What one committed per-fetch prediction recorded, so drains and
/// retractions reverse it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CommittedFetch {
    bytes: u64,
    src: NodeId,
    dst: NodeId,
}

/// The collector state machine.
pub struct Collector {
    /// Hadoop server id → network node.
    server_nodes: Vec<NodeId>,
    /// Known reducer locations (hadoop server ids), per job.
    reducer_loc: BTreeMap<(JobId, ReducerId), ServerId>,
    /// Predictions whose reducer location is not yet known.
    pending: Vec<PendingEntry>,
    /// Committed prediction per (job, map, reducer), for exact reversal
    /// when a fetch completes or the map is re-executed.
    predicted_fetch: BTreeMap<(JobId, MapTaskId, ReducerId), CommittedFetch>,
    /// The server whose prediction currently represents each map task —
    /// the idempotency key of the lossy management network.
    latest_src: BTreeMap<(JobId, MapTaskId), ServerId>,
    /// Outstanding predicted bytes per (src node, dst node), remote only.
    outstanding: BTreeMap<(NodeId, NodeId), u64>,
    /// Cumulative predicted remote traffic per source node over time —
    /// Pythia's side of the Figure 5 comparison.
    predicted_curves: BTreeMap<NodeId, (f64, CumulativeCurve)>,
    /// Prediction messages ingested (duplicates excluded).
    pub predictions_received: u64,
    /// Per-reducer entries parked for unknown destinations.
    pub entries_parked: u64,
    /// Re-sent/duplicated messages dropped by the (job, map) key.
    pub duplicates_dropped: u64,
    /// Predictions withdrawn because the map task re-executed elsewhere.
    pub retractions: u64,
    /// Parked entries removed by TTL expiry.
    pub parked_expired: u64,
    /// Messages dropped for referencing an unknown server.
    pub malformed_dropped: u64,
}

impl Collector {
    /// A collector where Hadoop server `i` lives on `server_nodes[i]`.
    pub fn new(server_nodes: Vec<NodeId>) -> Self {
        Collector {
            server_nodes,
            reducer_loc: BTreeMap::new(),
            pending: Vec::new(),
            predicted_fetch: BTreeMap::new(),
            latest_src: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            predicted_curves: BTreeMap::new(),
            predictions_received: 0,
            entries_parked: 0,
            duplicates_dropped: 0,
            retractions: 0,
            parked_expired: 0,
            malformed_dropped: 0,
        }
    }

    /// Resolve a Hadoop server id to its network node. Out-of-range ids
    /// (malformed predictions) are an error, not a panic.
    pub fn node_of(&self, s: ServerId) -> Result<NodeId, UnknownServer> {
        self.server_nodes
            .get(s.0 as usize)
            .copied()
            .ok_or(UnknownServer(s))
    }

    /// A prediction message arrived (management-network latency already
    /// applied by the caller). Idempotent: re-delivered copies of a
    /// message already ingested are dropped; a copy from a different
    /// server retracts the stale prediction (map re-execution) before
    /// ingesting the new one. Entries for reducers with no known location
    /// are parked.
    pub fn on_prediction(&mut self, now: SimTime, msg: &PredictionMsg) -> PredictionOutcome {
        if self.node_of(msg.src_server).is_err() {
            self.malformed_dropped += 1;
            return PredictionOutcome::default();
        }
        let mut outcome = PredictionOutcome::default();
        match self.latest_src.get(&(msg.job, msg.map)) {
            Some(&prev_src) if prev_src == msg.src_server => {
                // Network duplicate or agent retransmission: already
                // ingested, drop without touching the aggregates.
                self.duplicates_dropped += 1;
                return outcome;
            }
            Some(_) => {
                // Same map, different server: Hadoop re-executed the task
                // (failure or speculation). The old output will never be
                // fetched — withdraw its predicted volume first.
                outcome.retracted = self.retract(msg.job, msg.map);
                self.retractions += 1;
            }
            None => {}
        }
        self.latest_src.insert((msg.job, msg.map), msg.src_server);
        self.predictions_received += 1;
        let mut out = Vec::new();
        for (r_idx, &bytes) in msg.per_reducer_bytes.iter().enumerate() {
            let reducer = ReducerId(r_idx as u32);
            let entry = PendingEntry {
                job: msg.job,
                map: msg.map,
                src: msg.src_server,
                reducer,
                bytes,
                parked_at: now,
            };
            match self.reducer_loc.get(&(msg.job, reducer)).copied() {
                Some(loc) => {
                    if let Some(d) = self.commit(now, entry, loc) {
                        out.push(d);
                    }
                }
                None => {
                    self.pending.push(entry);
                    self.entries_parked += 1;
                }
            }
        }
        outcome.demands = Self::coalesce(out);
        outcome
    }

    /// Reducer-launch event observed: fill in every parked entry for this
    /// reducer.
    pub fn on_reducer_location(
        &mut self,
        now: SimTime,
        job: JobId,
        reducer: ReducerId,
        server: ServerId,
    ) -> Vec<AggregatedDemand> {
        if self.node_of(server).is_err() {
            self.malformed_dropped += 1;
            return Vec::new();
        }
        self.reducer_loc.insert((job, reducer), server);
        let mut out = Vec::new();
        let mut still = Vec::with_capacity(self.pending.len());
        for entry in std::mem::take(&mut self.pending) {
            if entry.job == job && entry.reducer == reducer {
                if let Some(d) = self.commit(now, entry, server) {
                    out.push(d);
                }
            } else {
                still.push(entry);
            }
        }
        self.pending = still;
        Self::coalesce(out)
    }

    /// Fold one resolved entry into the aggregates. Local transfers
    /// (mapper and reducer on the same server) never touch the network:
    /// recorded for exactness but produce no demand.
    fn commit(
        &mut self,
        now: SimTime,
        entry: PendingEntry,
        reducer_server: ServerId,
    ) -> Option<AggregatedDemand> {
        let src = self.node_of(entry.src).ok()?;
        let dst = self.node_of(reducer_server).ok()?;
        let committed = CommittedFetch {
            bytes: entry.bytes,
            src,
            dst,
        };
        let prev = self
            .predicted_fetch
            .insert((entry.job, entry.map, entry.reducer), committed);
        if let Some(p) = prev {
            if p == committed {
                // Identical re-commit (e.g. a duplicate that was parked
                // before its twin resolved): a no-op, not extra demand.
                return None;
            }
            // A differing stale commit for the same fetch: reverse it so
            // every fetch counts toward `outstanding` exactly once.
            if p.src != p.dst {
                self.sub_outstanding((p.src, p.dst), p.bytes);
            }
        }
        if src == dst || entry.bytes == 0 {
            return None;
        }
        *self.outstanding.entry((src, dst)).or_insert(0) += entry.bytes;
        let (total, curve) = self
            .predicted_curves
            .entry(src)
            .or_insert_with(|| (0.0, CumulativeCurve::default()));
        *total += entry.bytes as f64;
        let t = *total;
        curve.push(now, t);
        Some(AggregatedDemand {
            src,
            dst,
            added_bytes: entry.bytes,
        })
    }

    /// Withdraw every committed and parked entry of `(job, map)`: its
    /// earlier execution's output will never be fetched. Returns the
    /// per-pair volumes removed from `outstanding` (for allocator drains).
    fn retract(&mut self, job: JobId, map: MapTaskId) -> Vec<((NodeId, NodeId), u64)> {
        let keys: Vec<(JobId, MapTaskId, ReducerId)> = self
            .predicted_fetch
            .range((job, map, ReducerId(0))..=(job, map, ReducerId(u32::MAX)))
            .map(|(&k, _)| k)
            .collect();
        let mut drains: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        for k in keys {
            if let Some(c) = self.predicted_fetch.remove(&k) {
                if c.src != c.dst && c.bytes > 0 {
                    self.sub_outstanding((c.src, c.dst), c.bytes);
                    *drains.entry((c.src, c.dst)).or_insert(0) += c.bytes;
                }
            }
        }
        self.pending.retain(|e| !(e.job == job && e.map == map));
        drains.into_iter().collect()
    }

    fn sub_outstanding(&mut self, pair: (NodeId, NodeId), bytes: u64) {
        if let Some(o) = self.outstanding.get_mut(&pair) {
            *o = o.saturating_sub(bytes);
            if *o == 0 {
                self.outstanding.remove(&pair);
            }
        }
    }

    /// Merge demands that share a server pair (one message can carry
    /// several reducers living on the same server).
    fn coalesce(demands: Vec<AggregatedDemand>) -> Vec<AggregatedDemand> {
        let mut merged: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        for d in demands {
            *merged.entry((d.src, d.dst)).or_insert(0) += d.added_bytes;
        }
        merged
            .into_iter()
            .map(|((src, dst), added_bytes)| AggregatedDemand {
                src,
                dst,
                added_bytes,
            })
            .collect()
    }

    /// A fetch completed: drain its predicted contribution from the pair's
    /// outstanding volume. Returns the (pair, drained bytes) if the fetch
    /// was remote and predicted. The pair recorded at commit time is
    /// authoritative — it reverses exactly what was added.
    pub fn on_fetch_completed(
        &mut self,
        job: JobId,
        map: MapTaskId,
        reducer: ReducerId,
        src: ServerId,
        dst: ServerId,
    ) -> Option<((NodeId, NodeId), u64)> {
        let _ = (src, dst);
        let c = self.predicted_fetch.remove(&(job, map, reducer))?;
        if c.src == c.dst || c.bytes == 0 {
            return None;
        }
        self.sub_outstanding((c.src, c.dst), c.bytes);
        Some(((c.src, c.dst), c.bytes))
    }

    /// Drop parked entries older than `ttl` (their reducer never
    /// launched — stale job, retracted map, or a lost launch event).
    /// Returns how many were expired.
    pub fn expire_parked(&mut self, now: SimTime, ttl: SimDuration) -> usize {
        let before = self.pending.len();
        self.pending
            .retain(|e| now.saturating_since(e.parked_at) < ttl);
        let expired = before - self.pending.len();
        self.parked_expired += expired as u64;
        expired
    }

    /// Outstanding predicted bytes for a pair.
    pub fn outstanding(&self, src: NodeId, dst: NodeId) -> u64 {
        self.outstanding.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Every pair with outstanding predicted volume, in deterministic
    /// order — the source of truth a recovering controller resyncs from.
    pub fn outstanding_pairs(&self) -> Vec<((NodeId, NodeId), u64)> {
        self.outstanding
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Number of parked (unknown-destination) entries.
    pub fn parked(&self) -> usize {
        self.pending.len()
    }

    /// Predicted cumulative remote-traffic curve for `node` (Figure 5).
    pub fn predicted_curve(&self, node: NodeId) -> Option<&CumulativeCurve> {
        self.predicted_curves.get(&node).map(|(_, c)| c)
    }

    /// Serialize the collector's mutable state. The server map is written
    /// too so a resume against a different scenario is a typed error, not
    /// silent misrouting. Parked entries keep their order — resolution
    /// order decides demand order at reducer launch.
    pub fn put_state(&self, w: &mut SectionWriter) {
        self.server_nodes.put(w);
        self.reducer_loc.put(w);
        self.pending.put(w);
        self.predicted_fetch.put(w);
        self.latest_src.put(w);
        self.outstanding.put(w);
        self.predicted_curves.put(w);
        self.predictions_received.put(w);
        self.entries_parked.put(w);
        self.duplicates_dropped.put(w);
        self.retractions.put(w);
        self.parked_expired.put(w);
        self.malformed_dropped.put(w);
    }

    /// Overlay state from a snapshot onto a freshly constructed collector.
    /// Validates internal invariants (server/node ids in range, parked
    /// entries genuinely unresolved, no zero outstanding entries) before
    /// committing anything.
    pub fn restore_state(&mut self, r: &mut SectionReader) -> Result<(), SnapshotError> {
        let server_nodes = Vec::<NodeId>::get(r)?;
        if server_nodes != self.server_nodes {
            return Err(r.malformed("collector server map differs from the running scenario"));
        }
        let n_servers = server_nodes.len();
        let node_set: std::collections::BTreeSet<NodeId> = server_nodes.iter().copied().collect();
        let reducer_loc = <BTreeMap<(JobId, ReducerId), ServerId> as Persist>::get(r)?;
        for loc in reducer_loc.values() {
            if loc.0 as usize >= n_servers {
                return Err(r.malformed(format!("reducer location {loc} out of range")));
            }
        }
        let pending = Vec::<PendingEntry>::get(r)?;
        for e in &pending {
            if e.src.0 as usize >= n_servers {
                return Err(r.malformed(format!("parked entry src {} out of range", e.src)));
            }
            if reducer_loc.contains_key(&(e.job, e.reducer)) {
                return Err(r.malformed("parked entry for a reducer with a known location"));
            }
        }
        let predicted_fetch =
            <BTreeMap<(JobId, MapTaskId, ReducerId), CommittedFetch> as Persist>::get(r)?;
        for c in predicted_fetch.values() {
            if !node_set.contains(&c.src) || !node_set.contains(&c.dst) {
                return Err(r.malformed("committed fetch references a non-server node"));
            }
        }
        let latest_src = <BTreeMap<(JobId, MapTaskId), ServerId> as Persist>::get(r)?;
        for s in latest_src.values() {
            if s.0 as usize >= n_servers {
                return Err(r.malformed(format!("latest-src server {s} out of range")));
            }
        }
        let outstanding = <BTreeMap<(NodeId, NodeId), u64> as Persist>::get(r)?;
        for (&(src, dst), &v) in &outstanding {
            if v == 0 {
                return Err(r.malformed("zero outstanding entry (should be removed)"));
            }
            if !node_set.contains(&src) || !node_set.contains(&dst) {
                return Err(r.malformed("outstanding pair references a non-server node"));
            }
        }
        let predicted_curves = <BTreeMap<NodeId, (f64, CumulativeCurve)> as Persist>::get(r)?;
        for (node, (total, _)) in &predicted_curves {
            if !node_set.contains(node) {
                return Err(r.malformed("predicted curve for a non-server node"));
            }
            if !total.is_finite() || *total < 0.0 {
                return Err(r.malformed(format!("predicted-curve total {total} not a valid sum")));
            }
        }
        self.reducer_loc = reducer_loc;
        self.pending = pending;
        self.predicted_fetch = predicted_fetch;
        self.latest_src = latest_src;
        self.outstanding = outstanding;
        self.predicted_curves = predicted_curves;
        self.predictions_received = u64::get(r)?;
        self.entries_parked = u64::get(r)?;
        self.duplicates_dropped = u64::get(r)?;
        self.retractions = u64::get(r)?;
        self.parked_expired = u64::get(r)?;
        self.malformed_dropped = u64::get(r)?;
        Ok(())
    }
}

impl Persist for PendingEntry {
    fn put(&self, w: &mut SectionWriter) {
        self.job.put(w);
        self.map.put(w);
        self.src.put(w);
        self.reducer.put(w);
        self.bytes.put(w);
        self.parked_at.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(PendingEntry {
            job: JobId::get(r)?,
            map: MapTaskId::get(r)?,
            src: ServerId::get(r)?,
            reducer: ReducerId::get(r)?,
            bytes: u64::get(r)?,
            parked_at: SimTime::get(r)?,
        })
    }
}

impl Persist for CommittedFetch {
    fn put(&self, w: &mut SectionWriter) {
        self.bytes.put(w);
        self.src.put(w);
        self.dst.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(CommittedFetch {
            bytes: u64::get(r)?,
            src: NodeId::get(r)?,
            dst: NodeId::get(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(map: u32, src: u32, bytes: Vec<u64>, at_secs: u64) -> PredictionMsg {
        PredictionMsg {
            job: JobId(0),
            map: MapTaskId(map),
            src_server: ServerId(src),
            per_reducer_bytes: bytes,
            predicted_at: SimTime::from_secs(at_secs),
        }
    }

    fn collector() -> Collector {
        // server i lives on node 10+i.
        Collector::new((0..4).map(|i| NodeId(10 + i)).collect())
    }

    #[test]
    fn known_reducer_aggregates_immediately() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        let d = c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        assert_eq!(
            d.demands,
            vec![AggregatedDemand {
                src: NodeId(10),
                dst: NodeId(11),
                added_bytes: 500
            }]
        );
        assert!(d.retracted.is_empty());
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 500);
    }

    #[test]
    fn unknown_reducer_parks_until_launch() {
        let mut c = collector();
        let d = c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        assert!(d.demands.is_empty());
        assert_eq!(c.parked(), 1);
        // Launch fills the parked entry.
        let d2 = c.on_reducer_location(SimTime::from_secs(2), JobId(0), ReducerId(0), ServerId(2));
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].dst, NodeId(12));
        assert_eq!(c.parked(), 0);
        assert_eq!(c.outstanding(NodeId(10), NodeId(12)), 500);
    }

    #[test]
    fn local_transfers_produce_no_demand() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(0));
        let d = c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        assert!(d.demands.is_empty(), "mapper and reducer co-located");
        assert_eq!(c.outstanding(NodeId(10), NodeId(10)), 0);
    }

    #[test]
    fn same_pair_reducers_coalesce() {
        let mut c = collector();
        // Reducers 0 and 1 both on server 1.
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(1), ServerId(1));
        let d = c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![300, 200], 0));
        assert_eq!(d.demands.len(), 1, "one aggregated entry per server pair");
        assert_eq!(d.demands[0].added_bytes, 500);
    }

    #[test]
    fn fetch_completion_drains_exactly() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        c.on_prediction(SimTime::ZERO, &msg(1, 0, vec![300], 0));
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 800);
        let drained = c
            .on_fetch_completed(
                JobId(0),
                MapTaskId(0),
                ReducerId(0),
                ServerId(0),
                ServerId(1),
            )
            .unwrap();
        assert_eq!(drained, ((NodeId(10), NodeId(11)), 500));
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 300);
        // Unknown fetch: None.
        assert!(c
            .on_fetch_completed(
                JobId(0),
                MapTaskId(9),
                ReducerId(0),
                ServerId(0),
                ServerId(1)
            )
            .is_none());
    }

    #[test]
    fn predicted_curve_steps_at_commit_times() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![100], 1));
        c.on_prediction(SimTime::from_secs(3), &msg(1, 0, vec![200], 3));
        let curve = c.predicted_curve(NodeId(10)).unwrap();
        assert_eq!(curve.value_at(SimTime::from_secs(1)), 100.0);
        assert_eq!(curve.value_at(SimTime::from_secs(2)), 100.0);
        assert_eq!(curve.value_at(SimTime::from_secs(3)), 300.0);
    }

    #[test]
    fn park_then_resolve_timestamps_curve_at_resolution() {
        let mut c = collector();
        c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![100], 1));
        assert!(c.predicted_curve(NodeId(10)).is_none());
        c.on_reducer_location(SimTime::from_secs(5), JobId(0), ReducerId(0), ServerId(1));
        let curve = c.predicted_curve(NodeId(10)).unwrap();
        assert_eq!(curve.value_at(SimTime::from_secs(4)), 0.0);
        assert_eq!(curve.value_at(SimTime::from_secs(5)), 100.0);
    }

    /// Regression: a duplicate `PredictionMsg` for the same `(job, map)`
    /// used to inflate `outstanding` — `predicted_fetch.insert` overwrote
    /// while `outstanding +=` added again. Duplicates are now dropped.
    #[test]
    fn duplicate_prediction_does_not_double_count() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        let d1 = c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        assert_eq!(d1.demands.len(), 1);
        // The exact same message again — a network dup or agent retry.
        let d2 = c.on_prediction(SimTime::from_secs(2), &msg(0, 0, vec![500], 1));
        assert!(d2.demands.is_empty(), "duplicate must add no demand");
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 500, "not 1000");
        assert_eq!(c.duplicates_dropped, 1);
        assert_eq!(c.predictions_received, 1);
        // One fetch drains the pair to exactly zero.
        c.on_fetch_completed(
            JobId(0),
            MapTaskId(0),
            ReducerId(0),
            ServerId(0),
            ServerId(1),
        );
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 0);
    }

    #[test]
    fn duplicate_while_parked_parks_once() {
        let mut c = collector();
        c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        assert_eq!(c.parked(), 1, "duplicate must not park a second entry");
        let d = c.on_reducer_location(SimTime::from_secs(1), JobId(0), ReducerId(0), ServerId(1));
        assert_eq!(d.len(), 1);
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 500);
    }

    #[test]
    fn reexecuted_map_retracts_old_prediction() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 500);
        // Map 0 re-executes on server 2 (speculation / task failure).
        let d = c.on_prediction(SimTime::from_secs(2), &msg(0, 2, vec![500], 2));
        assert_eq!(d.retracted, vec![((NodeId(10), NodeId(11)), 500)]);
        assert_eq!(d.demands.len(), 1);
        assert_eq!(d.demands[0].src, NodeId(12));
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 0, "old src gone");
        assert_eq!(c.outstanding(NodeId(12), NodeId(11)), 500);
        assert_eq!(c.retractions, 1);
        // The fetch (from the new location) drains to zero.
        c.on_fetch_completed(
            JobId(0),
            MapTaskId(0),
            ReducerId(0),
            ServerId(2),
            ServerId(1),
        );
        assert_eq!(c.outstanding(NodeId(12), NodeId(11)), 0);
    }

    #[test]
    fn reexecuted_map_drops_parked_entries() {
        let mut c = collector();
        // Parked: reducer location unknown.
        c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        assert_eq!(c.parked(), 1);
        // Re-execution elsewhere replaces the parked entry too.
        c.on_prediction(SimTime::from_secs(1), &msg(0, 2, vec![500], 1));
        assert_eq!(c.parked(), 1, "old parked entry replaced, not added");
        let d = c.on_reducer_location(SimTime::from_secs(2), JobId(0), ReducerId(0), ServerId(1));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].src, NodeId(12), "resolved from the re-execution");
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 0);
    }

    #[test]
    fn malformed_server_id_is_dropped_not_a_panic() {
        let mut c = collector();
        // Only servers 0..4 exist; 99 is garbage.
        let d = c.on_prediction(SimTime::ZERO, &msg(0, 99, vec![500], 0));
        assert!(d.demands.is_empty() && d.retracted.is_empty());
        assert_eq!(c.malformed_dropped, 1);
        assert_eq!(c.predictions_received, 0);
        assert!(c.node_of(ServerId(99)).is_err());
        assert_eq!(c.node_of(ServerId(1)), Ok(NodeId(11)));
        // A malformed reducer location is likewise dropped.
        let d2 = c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(42));
        assert!(d2.is_empty());
        assert_eq!(c.malformed_dropped, 2);
    }

    #[test]
    fn parked_entries_expire_after_ttl() {
        let mut c = collector();
        c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        c.on_prediction(SimTime::from_secs(8), &msg(1, 0, vec![300], 8));
        assert_eq!(c.parked(), 2);
        // TTL 5 s at t=10: the t=1 entry dies, the t=8 entry survives.
        let expired = c.expire_parked(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(expired, 1);
        assert_eq!(c.parked(), 1);
        assert_eq!(c.parked_expired, 1);
        // The survivor still resolves normally.
        let d = c.on_reducer_location(SimTime::from_secs(11), JobId(0), ReducerId(0), ServerId(1));
        assert_eq!(d.len(), 1);
        assert_eq!(c.outstanding(NodeId(10), NodeId(11)), 300);
    }

    #[test]
    fn outstanding_pairs_lists_live_volume() {
        let mut c = collector();
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        assert!(c.outstanding_pairs().is_empty());
        c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        c.on_prediction(SimTime::ZERO, &msg(1, 2, vec![300], 0));
        assert_eq!(
            c.outstanding_pairs(),
            vec![
                ((NodeId(10), NodeId(11)), 500),
                ((NodeId(12), NodeId(11)), 300)
            ]
        );
        c.on_fetch_completed(
            JobId(0),
            MapTaskId(0),
            ReducerId(0),
            ServerId(0),
            ServerId(1),
        );
        assert_eq!(c.outstanding_pairs(), vec![((NodeId(12), NodeId(11)), 300)]);
    }

    fn snapshot(c: &Collector) -> Vec<u8> {
        let mut w = pythia_snapshot::Writer::new();
        w.section("collector", |s| c.put_state(s));
        w.finish()
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let mut c = collector();
        // Committed demand, a parked entry, a duplicate, and a retraction:
        // every aggregate the collector keeps is non-trivial.
        c.on_reducer_location(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(1));
        c.on_prediction(SimTime::from_secs(1), &msg(0, 0, vec![500], 1));
        c.on_prediction(SimTime::from_secs(2), &msg(0, 0, vec![500], 2));
        c.on_prediction(SimTime::from_secs(3), &msg(1, 2, vec![300], 3));
        c.on_prediction(SimTime::from_secs(4), &msg(2, 0, vec![0, 700], 4)); // parks reducer 1
        c.on_prediction(SimTime::from_secs(5), &msg(1, 3, vec![300], 5)); // re-execution

        let bytes = snapshot(&c);
        let mut c2 = collector();
        let mut sec = pythia_snapshot::Reader::new(&bytes)
            .unwrap()
            .section("collector")
            .unwrap();
        c2.restore_state(&mut sec).unwrap();
        sec.finish().unwrap();

        // Re-snapshot is byte-identical; counters and aggregates survive.
        assert_eq!(snapshot(&c2), bytes);
        assert_eq!(c2.duplicates_dropped, 1);
        assert_eq!(c2.retractions, 1);
        assert_eq!(c2.parked(), 1);
        assert_eq!(c2.outstanding_pairs(), c.outstanding_pairs());
        // Both resume identically: the parked entry resolves the same way.
        let at = SimTime::from_secs(6);
        let d1 = c.on_reducer_location(at, JobId(0), ReducerId(1), ServerId(2));
        let d2 = c2.on_reducer_location(at, JobId(0), ReducerId(1), ServerId(2));
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 1);
        assert_eq!(
            c.predicted_curve(NodeId(10)).unwrap().value_at(at),
            c2.predicted_curve(NodeId(10)).unwrap().value_at(at),
        );
    }

    #[test]
    fn restore_against_different_cluster_is_a_typed_error() {
        let mut c = collector();
        c.on_prediction(SimTime::ZERO, &msg(0, 0, vec![500], 0));
        let bytes = snapshot(&c);
        // A cluster with a different server map must refuse the snapshot.
        let mut other = Collector::new((0..4).map(|i| NodeId(20 + i)).collect());
        let mut sec = pythia_snapshot::Reader::new(&bytes)
            .unwrap()
            .section("collector")
            .unwrap();
        match other.restore_state(&mut sec) {
            Err(pythia_snapshot::SnapshotError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn parked_entry_with_known_location_is_a_typed_error() {
        // Hand-craft an impossible state: an entry parked for a reducer
        // whose location the same snapshot claims to know. A live
        // collector resolves such entries immediately, so this can only
        // come from corruption — restore must reject it.
        let server_nodes: Vec<NodeId> = (0..4).map(|i| NodeId(10 + i)).collect();
        let mut w = pythia_snapshot::Writer::new();
        w.section("collector", |s| {
            server_nodes.put(s);
            let mut loc = BTreeMap::new();
            loc.insert((JobId(0), ReducerId(0)), ServerId(1));
            loc.put(s);
            vec![PendingEntry {
                job: JobId(0),
                map: MapTaskId(0),
                src: ServerId(0),
                reducer: ReducerId(0),
                bytes: 500,
                parked_at: SimTime::ZERO,
            }]
            .put(s);
            BTreeMap::<(JobId, MapTaskId, ReducerId), CommittedFetch>::new().put(s);
            BTreeMap::<(JobId, MapTaskId), ServerId>::new().put(s);
            BTreeMap::<(NodeId, NodeId), u64>::new().put(s);
            BTreeMap::<NodeId, (f64, CumulativeCurve)>::new().put(s);
            for _ in 0..6 {
                0u64.put(s);
            }
        });
        let bytes = w.finish();
        let mut c = collector();
        let mut sec = pythia_snapshot::Reader::new(&bytes)
            .unwrap()
            .section("collector")
            .unwrap();
        match c.restore_state(&mut sec) {
            Err(pythia_snapshot::SnapshotError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
