//! The Pythia system facade: instrumentation → collector → allocator →
//! controller, wired end to end.
//!
//! [`PythiaSystem`] is what the cluster engine talks to. The driving
//! contract (all methods are pure state transitions; the engine owns
//! simulated time):
//!
//! 1. Hadoop spills a map output → engine calls [`PythiaSystem::on_spill`]
//!    with the raw index-file bytes; gets back the prediction message and
//!    its management-network **delivery time**, and schedules it.
//! 2. At delivery time → [`PythiaSystem::on_prediction_delivered`]; Pythia
//!    aggregates, allocates paths for newly active server pairs, and
//!    returns the OpenFlow rules to program (each with its hardware
//!    install latency).
//! 3. A reducer launches → [`PythiaSystem::on_reducer_launched`]; parked
//!    predictions resolve, possibly producing more rules.
//! 4. A shuffle fetch completes → [`PythiaSystem::on_fetch_completed`];
//!    the pair's outstanding volume drains, freeing planned capacity.

use pythia_des::{SimDuration, SimTime};
use pythia_hadoop::{JobId, MapTaskId, ReducerId, ServerId};
use pythia_netsim::{CumulativeCurve, LinkId, NodeId, Path, Topology};
use pythia_openflow::{Controller, FlowMatch, PendingRule};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};
use pythia_trace::{AllocOutcome, Component, Trace, TraceEvent};

use crate::allocator::{FlowAllocator, Placement};
use crate::collector::{AggregatedDemand, Collector};
use crate::instrument::{Instrumentation, PredictionMsg};
use crate::mgmtnet::MgmtNetConfig;
use crate::residual::ResidualTable;

/// Granularity at which predicted transfers are aggregated and rules are
/// installed (§IV: "large-scale future SDN network setups may force
/// routing at the level of server aggregations, e.g. racks or sets of
/// racks-PODs. Pythia can easily respond to such a requirement by
/// populating the flow aggregation module with server location-awareness
/// and an appropriate aggregation policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationPolicy {
    /// One aggregate (and one path decision) per mapper-server →
    /// reducer-server pair — the paper's deployed configuration.
    ServerPair,
    /// One path decision per rack pair: all server pairs between two
    /// racks ride the same trunk. Conserves forwarding state (in hardware
    /// this is a pair of IP-prefix rules per ToR) at the cost of
    /// load-balancing freedom.
    RackPair,
}

/// How the allocator weighs transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationMode {
    /// Full Pythia: size-aware first-fit-decreasing, where heavier pairs
    /// (the barrier-critical ones) get the better placements.
    SizeAware,
    /// FlowComb-like (§VI): uses the *existence* of predicted transfers
    /// but "does not leverage application intelligence except from
    /// predicted flow volumes"'s criticality — modelled by erasing the
    /// volume signal: every demand is placed as if it were the same size.
    SizeBlind,
}

/// Pythia tunables.
#[derive(Debug, Clone)]
pub struct PythiaConfig {
    /// One-way latency of a prediction message over the management
    /// network (server → collector → allocation logic). The paper keeps
    /// all Pythia control traffic off the data network (§III).
    pub mgmt_latency: SimDuration,
    /// OpenFlow priority of installed shuffle rules (above the default
    /// ECMP behaviour, below nothing else we install).
    pub rule_priority: u16,
    /// Aggregation granularity for path decisions.
    pub aggregation: AggregationPolicy,
    /// Size-aware (Pythia) vs size-blind (FlowComb-like) placement.
    pub allocation: AllocationMode,
    /// Fault model of the management network (default: ideal channel —
    /// no loss, duplication, or jitter).
    pub mgmtnet: MgmtNetConfig,
    /// Expire parked (unknown-reducer) prediction entries older than
    /// this. `None` (default) keeps them forever — correct when the
    /// management network is ideal and every reducer launches.
    pub parked_ttl: Option<SimDuration>,
}

impl Default for PythiaConfig {
    fn default() -> Self {
        PythiaConfig {
            mgmt_latency: SimDuration::from_millis(1),
            rule_priority: 100,
            aggregation: AggregationPolicy::ServerPair,
            allocation: AllocationMode::SizeAware,
            mgmtnet: MgmtNetConfig::default(),
            parked_ttl: None,
        }
    }
}

/// Aggregate statistics for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PythiaStats {
    /// Prediction messages emitted by the instrumentation.
    pub predictions_sent: u64,
    /// Aggregated server-pair demand increments processed.
    pub demands_aggregated: u64,
    /// Path (re)assignments made by the allocator.
    pub paths_assigned: u64,
    /// OpenFlow rules issued to the controller.
    pub rules_issued: u64,
    /// Placements made while the controller was down — the pair runs on
    /// default ECMP until the restart resync installs its rules.
    pub demands_deferred: u64,
    /// Rules re-issued by controller-restart resyncs.
    pub rules_reinstalled: u64,
    /// Controller restart resyncs performed.
    pub controller_resyncs: u64,
    /// Placement requests with no candidate path (degraded fabric) —
    /// the pair rides default ECMP instead of a pinned route.
    pub demands_no_path: u64,
}

impl Persist for PythiaStats {
    fn put(&self, w: &mut SectionWriter) {
        self.predictions_sent.put(w);
        self.demands_aggregated.put(w);
        self.paths_assigned.put(w);
        self.rules_issued.put(w);
        self.demands_deferred.put(w);
        self.rules_reinstalled.put(w);
        self.controller_resyncs.put(w);
        self.demands_no_path.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(PythiaStats {
            predictions_sent: u64::get(r)?,
            demands_aggregated: u64::get(r)?,
            paths_assigned: u64::get(r)?,
            rules_issued: u64::get(r)?,
            demands_deferred: u64::get(r)?,
            rules_reinstalled: u64::get(r)?,
            controller_resyncs: u64::get(r)?,
            demands_no_path: u64::get(r)?,
        })
    }
}

/// The complete Pythia deployment over one cluster.
pub struct PythiaSystem {
    cfg: PythiaConfig,
    instruments: Vec<Instrumentation>,
    collector: Collector,
    allocator: FlowAllocator,
    /// Rack-aggregation state: per rack pair, the pinned inter-switch
    /// trunk link and how many active server pairs ride it.
    rack_trunk: std::collections::BTreeMap<(u32, u32), (LinkId, u64)>,
    /// Server pairs currently counted against a rack pin.
    rack_counted: std::collections::BTreeMap<(NodeId, NodeId), (u32, u32)>,
    /// Whether the SDN controller is reachable. While down, placements
    /// are still decided (the collector/allocator live with Pythia, not
    /// the controller) but no rules can be installed — new aggregated
    /// flows ride default ECMP until the restart resync.
    controller_up: bool,
    /// Per-link background/residual capacity, updated incrementally by
    /// [`PythiaSystem::set_background`] so path scoring is O(1) per link.
    residuals: ResidualTable,
    /// Scratch: active pairs snapshot for the periodic reassignment
    /// sweep. Reused so the steady-state control loop does not allocate.
    active_scratch: Vec<(NodeId, NodeId)>,
    /// Scratch: per-candidate residual bandwidths, parallel to the
    /// controller's memoized path slice.
    resid_scratch: Vec<f64>,
    /// Scratch: candidate paths narrowed to a pinned rack trunk
    /// (RackPair aggregation only).
    pin_paths: Vec<Path>,
    /// Scratch: residuals parallel to `pin_paths`.
    pin_resids: Vec<f64>,
    /// Flight-recorder handle (off by default).
    trace: Trace,
    /// Aggregate statistics for reporting.
    pub stats: PythiaStats,
}

impl PythiaSystem {
    /// `server_nodes[i]` is the network node hosting Hadoop server `i`;
    /// `topo` is the (nominal) fabric the residual table is sized from.
    pub fn new(cfg: PythiaConfig, topo: &Topology, server_nodes: Vec<NodeId>) -> Self {
        let instruments = (0..server_nodes.len() as u32)
            .map(|i| Instrumentation::new(ServerId(i)))
            .collect();
        let allocator = match cfg.allocation {
            AllocationMode::SizeAware => FlowAllocator::new(),
            AllocationMode::SizeBlind => FlowAllocator::new_size_blind(),
        };
        PythiaSystem {
            cfg,
            instruments,
            collector: Collector::new(server_nodes),
            allocator,
            rack_trunk: std::collections::BTreeMap::new(),
            rack_counted: std::collections::BTreeMap::new(),
            controller_up: true,
            residuals: ResidualTable::new(topo),
            active_scratch: Vec::new(),
            resid_scratch: Vec::new(),
            pin_paths: Vec::new(),
            pin_resids: Vec::new(),
            trace: Trace::off(),
            stats: PythiaStats::default(),
        }
    }

    /// Attach a flight-recorder handle (the engine hands out clones of
    /// its per-run recorder).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The configuration in force.
    pub fn config(&self) -> &PythiaConfig {
        &self.cfg
    }

    /// The link-load service reported `link` carrying `bps` of
    /// **non-shuffle** load (Pythia differentiates its own traffic from
    /// background using application knowledge, §IV). Updates the link's
    /// residual in O(1).
    pub fn set_background(&mut self, link: LinkId, bps: f64) {
        self.residuals.set_background(link, bps);
    }

    /// Bulk background refresh (`loads[l]` per link id) — one O(links)
    /// pass, after which every path score is table lookups.
    pub fn set_background_from(&mut self, loads: &[f64]) {
        self.residuals.set_background_from(loads);
    }

    /// The residual table in force (diagnostics/tests).
    pub fn residuals(&self) -> &ResidualTable {
        &self.residuals
    }

    /// Instrumentation hook: the spill index for `map` appeared on
    /// `server`. Returns the prediction and the time it reaches the
    /// collector. Corrupt index files are dropped (and would be logged in
    /// a real deployment) — prediction is best-effort, Hadoop is not.
    pub fn on_spill(
        &mut self,
        now: SimTime,
        job: JobId,
        map: MapTaskId,
        server: ServerId,
        data: &[u8],
    ) -> Option<(PredictionMsg, SimTime)> {
        let inst = &mut self.instruments[server.0 as usize];
        match inst.on_spill(now, job, map, data) {
            Ok(msg) => {
                self.stats.predictions_sent += 1;
                let deliver_at = now + self.cfg.mgmt_latency;
                self.trace
                    .record(Component::Instrument, || TraceEvent::SpillDecode {
                        job,
                        map,
                        server,
                        predicted_bytes: msg.total_bytes(),
                    });
                self.trace
                    .record(Component::Instrument, || TraceEvent::PredictionEmit {
                        job,
                        map,
                        server,
                        deliver_at,
                    });
                Some((msg, deliver_at))
            }
            Err(_) => {
                self.trace
                    .record(Component::Collector, || TraceEvent::PredictionDrop {
                        reason: "corrupt-index",
                    });
                None
            }
        }
    }

    /// The collector received a prediction. Background load is read from
    /// the residual table — push updates via
    /// [`PythiaSystem::set_background`] before delivering.
    pub fn on_prediction_delivered(
        &mut self,
        now: SimTime,
        msg: &PredictionMsg,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        // Counter snapshots let the recorder classify what the collector
        // did with this delivery without touching its internals.
        let snap = self.trace.is_enabled().then(|| {
            (
                self.collector.duplicates_dropped,
                self.collector.malformed_dropped,
                self.collector.parked(),
            )
        });
        let outcome = self.collector.on_prediction(now, msg);
        if let Some((dups, malformed, parked)) = snap {
            if self.collector.duplicates_dropped > dups {
                self.trace
                    .record(Component::Collector, || TraceEvent::PredictionDedup {
                        job: msg.job,
                        map: msg.map,
                    });
            }
            if self.collector.malformed_dropped > malformed {
                self.trace
                    .record(Component::Collector, || TraceEvent::PredictionDrop {
                        reason: "malformed",
                    });
            }
            if !outcome.retracted.is_empty() {
                self.trace
                    .record(Component::Collector, || TraceEvent::PredictionRetract {
                        job: msg.job,
                        map: msg.map,
                        withdrawn: outcome.retracted.len() as u32,
                    });
            }
            let parked_now = self.collector.parked();
            if parked_now > parked {
                self.trace
                    .record(Component::Collector, || TraceEvent::CollectorPark {
                        job: msg.job,
                        map: msg.map,
                        entries: (parked_now - parked) as u32,
                    });
            }
        }
        // A re-executed map retracts its stale volumes before the new
        // prediction is placed.
        for &(pair, bytes) in &outcome.retracted {
            self.allocator.drain(pair, bytes);
            if self.cfg.aggregation == AggregationPolicy::RackPair {
                self.unpin_rack_if_idle(pair);
            }
        }
        self.handle_demands(&outcome.demands, controller)
    }

    /// A reducer launched: resolve parked predictions.
    pub fn on_reducer_launched(
        &mut self,
        now: SimTime,
        job: JobId,
        reducer: ReducerId,
        server: ServerId,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        let parked_before = self.trace.is_enabled().then(|| self.collector.parked());
        let demands = self
            .collector
            .on_reducer_location(now, job, reducer, server);
        if let Some(before) = parked_before {
            let released = before.saturating_sub(self.collector.parked());
            if released > 0 {
                self.trace
                    .record(Component::Collector, || TraceEvent::CollectorUnpark {
                        job,
                        reducer,
                        entries: released as u32,
                    });
            }
        }
        self.handle_demands(&demands, controller)
    }

    /// Network conditions changed (the link-load service reports a shifted
    /// background distribution): re-evaluate every active pair and move
    /// the ones whose path went bad. Returns the rules to (re)install.
    pub fn on_background_update(
        &mut self,
        now: SimTime,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        let _ = now;
        if !self.controller_up {
            // No controller: no link-load service, no rule installs. The
            // restart resync re-evaluates everything.
            return Vec::new();
        }
        let mut rules = Vec::new();
        // Candidate paths are borrowed straight from the controller's
        // memoized k-shortest sets; only residuals are recomputed, into a
        // reused scratch buffer. The allocator clones a path only when a
        // pair actually moves.
        let mut pairs = std::mem::take(&mut self.active_scratch);
        self.allocator.active_pairs_into(&mut pairs);
        let paths_epoch = controller.paths_epoch();
        for &pair in &pairs {
            let paths = controller.paths(pair.0, pair.1);
            self.resid_scratch.clear();
            for p in paths {
                self.resid_scratch.push(self.residuals.path_residual_bps(p));
            }
            // 1.5× hysteresis: move only for a clear win. The epoch-keyed
            // entry point reuses the pair's memoized candidate geometry
            // across sweeps (the path sets are stable between topology
            // events, so the memo hits on every sweep after the first).
            if let Some(path) =
                self.allocator
                    .reassign_epoch(pair, paths, &self.resid_scratch, 1.5, paths_epoch)
            {
                self.stats.paths_assigned += 1;
                let matcher = FlowMatch::server_pair(pair.0, pair.1);
                let pending = controller.install_path(matcher, &path, self.cfg.rule_priority);
                self.stats.rules_issued += pending.len() as u64;
                rules.extend(pending);
            }
        }
        self.active_scratch = pairs;
        rules
    }

    /// A shuffle fetch completed: drain the pair's predicted volume.
    pub fn on_fetch_completed(
        &mut self,
        job: JobId,
        map: MapTaskId,
        reducer: ReducerId,
        src: ServerId,
        dst: ServerId,
    ) {
        if let Some((pair, bytes)) = self
            .collector
            .on_fetch_completed(job, map, reducer, src, dst)
        {
            self.allocator.drain(pair, bytes);
            if self.cfg.aggregation == AggregationPolicy::RackPair {
                self.unpin_rack_if_idle(pair);
            }
        }
    }

    /// The SDN controller crashed: stop issuing rules. Placement state is
    /// kept — Pythia's collector/allocator run beside Hadoop, not inside
    /// the controller — so the restart resync can re-derive every rule.
    pub fn set_controller_down(&mut self) {
        self.controller_up = false;
    }

    /// Whether rule installation is currently possible.
    pub fn controller_is_up(&self) -> bool {
        self.controller_up
    }

    /// The controller restarted. Re-derive the full rule set from
    /// collector/allocator state: re-place pairs that still carry
    /// predicted volume but lost their assignment, then reinstall rules
    /// for every active pair (flow-table replace semantics make the
    /// reinstalls idempotent on switches that kept their TCAM).
    pub fn on_controller_restart(
        &mut self,
        now: SimTime,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        self.controller_up = true;
        self.stats.controller_resyncs += 1;
        // Pairs the collector predicts but the allocator never placed
        // (NoPath during the outage, e.g. a concurrent link failure).
        let unplaced: Vec<AggregatedDemand> = self
            .collector
            .outstanding_pairs()
            .into_iter()
            .filter(|&((src, dst), _)| self.allocator.assigned_path((src, dst)).is_none())
            .map(|((src, dst), bytes)| AggregatedDemand {
                src,
                dst,
                added_bytes: bytes,
            })
            .collect();
        let mut rules = self.handle_demands(&unplaced, controller);
        for pair in self.allocator.active_pairs() {
            if let Some(path) = self.allocator.assigned_path(pair).cloned() {
                let matcher = FlowMatch::server_pair(pair.0, pair.1);
                let pending = controller.install_path(matcher, &path, self.cfg.rule_priority);
                self.stats.rules_issued += pending.len() as u64;
                self.stats.rules_reinstalled += pending.len() as u64;
                rules.extend(pending);
            }
        }
        let _ = now;
        rules
    }

    /// TTL sweep over parked predictions (no-op unless
    /// [`PythiaConfig::parked_ttl`] is set). Returns entries expired.
    pub fn expire_parked(&mut self, now: SimTime) -> usize {
        match self.cfg.parked_ttl {
            Some(ttl) => self.collector.expire_parked(now, ttl),
            None => 0,
        }
    }

    /// Read access to the collector (degradation counters, outstanding
    /// volumes).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Serialize every stateful sub-component: per-server middleware
    /// counters, the collector, the allocator plan, rack-aggregation pins,
    /// controller reachability, the residual table, and the run stats.
    /// The config and the trace handle are scenario wiring, not state.
    pub fn put_state(&self, w: &mut SectionWriter) {
        (self.instruments.len() as u64).put(w);
        for inst in &self.instruments {
            inst.put_state(w);
        }
        self.collector.put_state(w);
        self.allocator.put_state(w);
        self.rack_trunk.put(w);
        self.rack_counted.put(w);
        self.controller_up.put(w);
        self.residuals.put_state(w);
        self.stats.put(w);
    }

    /// Restore onto a freshly constructed system for the same scenario
    /// (same config, topology, and server map — mismatches surface as
    /// typed errors from the sub-restores).
    pub fn restore_state(
        &mut self,
        topo: &Topology,
        r: &mut SectionReader,
    ) -> Result<(), SnapshotError> {
        let n = u64::get(r)? as usize;
        if n != self.instruments.len() {
            return Err(r.malformed(format!(
                "snapshot has {n} instrumented servers, scenario has {}",
                self.instruments.len()
            )));
        }
        for inst in &mut self.instruments {
            inst.restore_state(r)?;
        }
        self.collector.restore_state(r)?;
        self.allocator.restore_state(topo, r)?;
        let rack_trunk =
            <std::collections::BTreeMap<(u32, u32), (LinkId, u64)> as Persist>::get(r)?;
        for &(link, count) in rack_trunk.values() {
            if link.0 as usize >= topo.num_links() {
                return Err(r.malformed(format!("rack trunk {link} out of range")));
            }
            if count == 0 {
                return Err(r.malformed("rack trunk pinned with zero riders"));
            }
        }
        let rack_counted =
            <std::collections::BTreeMap<(NodeId, NodeId), (u32, u32)> as Persist>::get(r)?;
        for key in rack_counted.values() {
            if !rack_trunk.contains_key(key) {
                return Err(r.malformed("server pair counted against an unpinned rack pair"));
            }
        }
        self.rack_trunk = rack_trunk;
        self.rack_counted = rack_counted;
        self.controller_up = bool::get(r)?;
        self.residuals.restore_state(r)?;
        self.stats = PythiaStats::get(r)?;
        self.active_scratch.clear();
        self.resid_scratch.clear();
        self.pin_paths.clear();
        self.pin_resids.clear();
        Ok(())
    }

    fn handle_demands(
        &mut self,
        demands: &[AggregatedDemand],
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        let mut rules = Vec::new();
        let _span = self.trace.span("first_fit_place");
        for d in demands {
            self.trace
                .record(Component::Collector, || TraceEvent::CollectorAggregate {
                    src: d.src,
                    dst: d.dst,
                    added_bytes: d.added_bytes,
                });
        }
        // Largest demand first: first-fit-decreasing.
        let mut sorted: Vec<&AggregatedDemand> = demands.iter().collect();
        sorted.sort_by(|a, b| {
            b.added_bytes
                .cmp(&a.added_bytes)
                .then_with(|| (a.src, a.dst).cmp(&(b.src, b.dst)))
        });
        let paths_epoch = controller.paths_epoch();
        for d in sorted {
            self.stats.demands_aggregated += 1;
            // Fast path: the overwhelming majority of demands stack onto
            // a pair that already holds an assignment with outstanding
            // volume. The allocator absorbs those with mutations
            // bit-identical to the Keep branch of a full placement, so
            // the candidate-path lookup and per-path residual scan are
            // skipped entirely.
            if self.allocator.stack_demand((d.src, d.dst), d.added_bytes) {
                self.trace
                    .record(Component::Allocator, || TraceEvent::AllocPlace {
                        src: d.src,
                        dst: d.dst,
                        bytes: d.added_bytes,
                        outcome: AllocOutcome::Keep,
                        links: Vec::new(),
                        resid_bps: 0.0,
                    });
                continue;
            }
            let rack_key = self.rack_key(controller, d.src, d.dst);
            let all = controller.paths(d.src, d.dst);
            let mut paths: &[Path] = all;
            self.resid_scratch.clear();
            for p in all {
                self.resid_scratch.push(self.residuals.path_residual_bps(p));
            }
            let mut resids: &[f64] = &self.resid_scratch;
            // ServerPair aggregation (the deployed configuration) hands
            // the controller's path epoch to the allocator so it can
            // reuse the pair's memoized candidate geometry — bit-identical
            // to a fresh scan while the epoch holds. RackPair narrows the
            // candidate set below, so it stays on the plain entry point.
            let mut epoch = None;
            if self.cfg.aggregation != AggregationPolicy::RackPair {
                epoch = Some(paths_epoch);
            }
            // Rack aggregation: once a trunk is pinned for this rack pair,
            // every further server pair between the racks must follow it.
            // Only that (narrowing) case copies candidates; the common
            // path borrows them from the controller's memoized set.
            if self.cfg.aggregation == AggregationPolicy::RackPair {
                if let Some(&(trunk, _)) = rack_key.and_then(|k| self.rack_trunk.get(&k)) {
                    self.pin_paths.clear();
                    self.pin_resids.clear();
                    for (p, &r) in all.iter().zip(resids) {
                        if p.contains_link(trunk) {
                            self.pin_paths.push(p.clone());
                            self.pin_resids.push(r);
                        }
                    }
                    if !self.pin_paths.is_empty() {
                        paths = &self.pin_paths;
                        resids = &self.pin_resids;
                    }
                }
            }
            let placement = match epoch {
                Some(pe) => {
                    self.allocator
                        .place_epoch((d.src, d.dst), d.added_bytes, paths, resids, pe)
                }
                None => self
                    .allocator
                    .place((d.src, d.dst), d.added_bytes, paths, resids),
            };
            match placement {
                Placement::Assign(path) => {
                    self.stats.paths_assigned += 1;
                    if self.trace.wants(Component::Allocator) {
                        let resid_bps = self.residuals.path_residual_bps(&path);
                        self.trace
                            .record(Component::Allocator, || TraceEvent::AllocPlace {
                                src: d.src,
                                dst: d.dst,
                                bytes: d.added_bytes,
                                outcome: AllocOutcome::Assign,
                                links: path.links().to_vec(),
                                resid_bps,
                            });
                    }
                    if self.cfg.aggregation == AggregationPolicy::RackPair {
                        self.pin_rack(rack_key, (d.src, d.dst), &path, controller);
                    }
                    if self.controller_up {
                        let matcher = FlowMatch::server_pair(d.src, d.dst);
                        let pending =
                            controller.install_path(matcher, &path, self.cfg.rule_priority);
                        self.stats.rules_issued += pending.len() as u64;
                        rules.extend(pending);
                    } else {
                        // Controller outage: the placement is remembered
                        // but the pair degrades to default ECMP until the
                        // restart resync installs its rules.
                        self.stats.demands_deferred += 1;
                    }
                }
                Placement::Keep => {
                    self.trace
                        .record(Component::Allocator, || TraceEvent::AllocPlace {
                            src: d.src,
                            dst: d.dst,
                            bytes: d.added_bytes,
                            outcome: AllocOutcome::Keep,
                            links: Vec::new(),
                            resid_bps: 0.0,
                        });
                }
                Placement::NoPath => {
                    // Degraded fabric: no candidate path. The pair keeps
                    // riding default ECMP; count it instead of panicking
                    // anywhere downstream.
                    self.stats.demands_no_path += 1;
                    self.trace
                        .record(Component::Allocator, || TraceEvent::AllocPlace {
                            src: d.src,
                            dst: d.dst,
                            bytes: d.added_bytes,
                            outcome: AllocOutcome::NoPath,
                            links: Vec::new(),
                            resid_bps: 0.0,
                        });
                }
            }
        }
        rules
    }

    /// The rack pair of a server pair, if both ends have rack labels.
    fn rack_key(&self, controller: &Controller, src: NodeId, dst: NodeId) -> Option<(u32, u32)> {
        let topo = controller.topology();
        Some((topo.node(src).rack()?, topo.node(dst).rack()?))
    }

    /// Record that `pair` rides `path`'s inter-switch trunk for its rack
    /// pair.
    fn pin_rack(
        &mut self,
        rack_key: Option<(u32, u32)>,
        pair: (NodeId, NodeId),
        path: &pythia_netsim::Path,
        controller: &Controller,
    ) {
        let Some(key) = rack_key else { return };
        let topo = controller.topology();
        // The trunk is the link whose endpoints are both switches.
        let trunk = path.links().iter().copied().find(|&l| {
            let link = topo.link(l);
            !topo.node(link.src).is_server() && !topo.node(link.dst).is_server()
        });
        let Some(trunk) = trunk else { return }; // intra-rack path
        let entry = self.rack_trunk.entry(key).or_insert((trunk, 0));
        entry.0 = trunk;
        entry.1 += 1;
        self.rack_counted.insert(pair, key);
    }

    /// Release `pair`'s rack pin if its outstanding volume drained.
    fn unpin_rack_if_idle(&mut self, pair: (NodeId, NodeId)) {
        if self.allocator.outstanding(pair) > 0 {
            return;
        }
        if let Some(key) = self.rack_counted.remove(&pair) {
            if let Some(entry) = self.rack_trunk.get_mut(&key) {
                entry.1 = entry.1.saturating_sub(1);
                if entry.1 == 0 {
                    self.rack_trunk.remove(&key);
                }
            }
        }
    }

    /// Predicted cumulative remote-traffic curve per source node
    /// (Figure 5's prediction side).
    pub fn predicted_curve(&self, node: NodeId) -> Option<&CumulativeCurve> {
        self.collector.predicted_curve(node)
    }

    /// Outstanding predicted bytes on a server pair.
    pub fn outstanding(&self, src: NodeId, dst: NodeId) -> u64 {
        self.collector.outstanding(src, dst)
    }

    /// Parked (unknown-reducer) prediction entries.
    pub fn parked_predictions(&self) -> usize {
        self.collector.parked()
    }

    /// Per-server spill-decode counts, for the §V-C overhead model.
    pub fn spills_decoded(&self, server: ServerId) -> u64 {
        self.instruments[server.0 as usize].spills_decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_des::RngFactory;
    use pythia_hadoop::IndexFile;
    use pythia_netsim::{build_multi_rack, MultiRack, MultiRackParams};
    use pythia_openflow::ControllerConfig;

    fn setup() -> (MultiRack, Controller, PythiaSystem) {
        let mr = build_multi_rack(&MultiRackParams::default());
        let controller = Controller::new(
            mr.topology.clone(),
            ControllerConfig::default(),
            &RngFactory::new(3),
        );
        let pythia = PythiaSystem::new(PythiaConfig::default(), &mr.topology, mr.servers.clone());
        (mr, controller, pythia)
    }

    #[test]
    fn spill_to_rules_end_to_end() {
        let (mr, mut ctl, mut py) = setup();
        // Reducer 0 lives on server 5 (other rack from server 0).
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(5), &mut ctl);
        let index = IndexFile::from_partition_sizes(&[50_000_000], 1.0);
        let (msg, deliver_at) = py
            .on_spill(
                SimTime::from_secs(10),
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        assert_eq!(
            deliver_at,
            SimTime::from_secs(10) + SimDuration::from_millis(1)
        );
        let rules = py.on_prediction_delivered(deliver_at, &msg, &mut ctl);
        // Cross-rack path: rules at both ToRs.
        assert_eq!(rules.len(), 2);
        for r in &rules {
            assert_eq!(
                r.rule.matcher,
                FlowMatch::server_pair(mr.servers[0], mr.servers[5])
            );
            assert_eq!(r.rule.priority, 100);
        }
        assert!(py.outstanding(mr.servers[0], mr.servers[5]) > 50_000_000);
    }

    #[test]
    fn unknown_reducer_defers_rules_until_launch() {
        let (mr, mut ctl, mut py) = setup();
        let index = IndexFile::from_partition_sizes(&[50_000_000], 1.0);
        let (msg, at) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        let rules = py.on_prediction_delivered(at, &msg, &mut ctl);
        assert!(rules.is_empty());
        assert_eq!(py.parked_predictions(), 1);
        let rules2 = py.on_reducer_launched(
            SimTime::from_secs(1),
            JobId(0),
            ReducerId(0),
            ServerId(5),
            &mut ctl,
        );
        assert_eq!(rules2.len(), 2);
        assert_eq!(py.parked_predictions(), 0);
        let _ = mr;
    }

    #[test]
    fn local_pair_installs_nothing() {
        let (_mr, mut ctl, mut py) = setup();
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(0), &mut ctl);
        let index = IndexFile::from_partition_sizes(&[50_000_000], 1.0);
        let (msg, at) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        let rules = py.on_prediction_delivered(at, &msg, &mut ctl);
        assert!(rules.is_empty());
    }

    #[test]
    fn second_prediction_on_active_pair_reuses_path() {
        let (mr, mut ctl, mut py) = setup();
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(5), &mut ctl);
        let index = IndexFile::from_partition_sizes(&[10_000_000], 1.0);
        let (m1, a1) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        let r1 = py.on_prediction_delivered(a1, &m1, &mut ctl);
        assert_eq!(r1.len(), 2);
        let (m2, a2) = py
            .on_spill(
                SimTime::from_secs(1),
                JobId(0),
                MapTaskId(1),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        let r2 = py.on_prediction_delivered(a2, &m2, &mut ctl);
        assert!(r2.is_empty(), "active pair must not churn rules");
        let _ = mr;
    }

    #[test]
    fn fetch_completion_drains_outstanding() {
        let (mr, mut ctl, mut py) = setup();
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(5), &mut ctl);
        let index = IndexFile::from_partition_sizes(&[10_000_000], 1.0);
        let (m1, a1) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        py.on_prediction_delivered(a1, &m1, &mut ctl);
        let before = py.outstanding(mr.servers[0], mr.servers[5]);
        assert!(before > 0);
        py.on_fetch_completed(
            JobId(0),
            MapTaskId(0),
            ReducerId(0),
            ServerId(0),
            ServerId(5),
        );
        assert_eq!(py.outstanding(mr.servers[0], mr.servers[5]), 0);
    }

    #[test]
    fn rack_aggregation_pins_all_pairs_to_one_trunk() {
        let (mr, mut ctl, _) = setup();
        let cfg = PythiaConfig {
            aggregation: AggregationPolicy::RackPair,
            ..Default::default()
        };
        let mut py = PythiaSystem::new(cfg, &mr.topology, mr.servers.clone());
        // Reducers 0..3 on rack-1 servers 5..8.
        for r in 0..4u32 {
            py.on_reducer_launched(
                SimTime::ZERO,
                JobId(0),
                ReducerId(r),
                ServerId(5 + r),
                &mut ctl,
            );
        }
        // Spills from four rack-0 servers, all four reducers each.
        let index = IndexFile::from_partition_sizes(&[10_000_000; 4], 1.0);
        let mut trunks = std::collections::BTreeSet::new();
        for srv in 0..4u32 {
            let (msg, at) = py
                .on_spill(
                    SimTime::ZERO,
                    JobId(0),
                    MapTaskId(srv),
                    ServerId(srv),
                    &index.encode(),
                )
                .unwrap();
            for rule in py.on_prediction_delivered(at, &msg, &mut ctl) {
                if rule.switch == mr.tors[0] {
                    trunks.insert(rule.rule.out_link);
                }
            }
        }
        assert_eq!(
            trunks.len(),
            1,
            "rack aggregation must pin one trunk, got {trunks:?}"
        );
    }

    #[test]
    fn server_pair_aggregation_uses_both_trunks() {
        let (mr, mut ctl, mut py) = setup();
        for r in 0..4u32 {
            py.on_reducer_launched(
                SimTime::ZERO,
                JobId(0),
                ReducerId(r),
                ServerId(5 + r),
                &mut ctl,
            );
        }
        let index = IndexFile::from_partition_sizes(&[10_000_000; 4], 1.0);
        let mut trunks = std::collections::BTreeSet::new();
        for srv in 0..4u32 {
            let (msg, at) = py
                .on_spill(
                    SimTime::ZERO,
                    JobId(0),
                    MapTaskId(srv),
                    ServerId(srv),
                    &index.encode(),
                )
                .unwrap();
            for rule in py.on_prediction_delivered(at, &msg, &mut ctl) {
                if rule.switch == mr.tors[0] {
                    trunks.insert(rule.rule.out_link);
                }
            }
        }
        assert_eq!(trunks.len(), 2, "server-pair mode must balance trunks");
    }

    #[test]
    fn size_blind_mode_places_by_count_not_volume() {
        let (mr, mut ctl, _) = setup();
        let cfg = PythiaConfig {
            allocation: AllocationMode::SizeBlind,
            ..Default::default()
        };
        let mut py = PythiaSystem::new(cfg, &mr.topology, mr.servers.clone());
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(5), &mut ctl);
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(1), ServerId(6), &mut ctl);
        // One huge transfer, then two tiny ones. Size-blind counts 1 pair
        // per trunk: the huge one lands alone on trunk A, tiny #1 on B,
        // tiny #2 back on A (count tie ...) — crucially it does NOT weigh
        // the huge transfer as heavier.
        let huge = IndexFile::from_partition_sizes(&[1_000_000_000, 0], 1.0);
        let tiny = IndexFile::from_partition_sizes(&[0, 1_000], 1.0);
        let (m1, a1) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &huge.encode(),
            )
            .unwrap();
        let r1 = py.on_prediction_delivered(a1, &m1, &mut ctl);
        let (m2, a2) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(1),
                ServerId(1),
                &tiny.encode(),
            )
            .unwrap();
        let r2 = py.on_prediction_delivered(a2, &m2, &mut ctl);
        // Both placements happen; the tiny pair takes the other trunk
        // despite the byte imbalance being irrelevant to it.
        let t1 = r1
            .iter()
            .find(|r| r.switch == mr.tors[0])
            .unwrap()
            .rule
            .out_link;
        let t2 = r2
            .iter()
            .find(|r| r.switch == mr.tors[0])
            .unwrap()
            .rule
            .out_link;
        assert_ne!(t1, t2);
    }

    fn snap(py: &PythiaSystem) -> Vec<u8> {
        let mut w = pythia_snapshot::Writer::new();
        w.section("pythia", |s| py.put_state(s));
        w.finish()
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let (mr, mut ctl, mut py) = setup();
        // Exercise every aggregate: a committed placement, a parked
        // prediction, background load, and run counters.
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(5), &mut ctl);
        let trunk0 = mr.topology.find_link(mr.tors[0], mr.tors[1], 0).unwrap();
        py.set_background(trunk0, 2e9);
        let index = IndexFile::from_partition_sizes(&[40_000_000], 1.0);
        let (m1, a1) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        py.on_prediction_delivered(a1, &m1, &mut ctl);
        let parked = IndexFile::from_partition_sizes(&[0, 25_000_000], 1.0);
        let (m2, a2) = py
            .on_spill(
                SimTime::from_secs(1),
                JobId(0),
                MapTaskId(1),
                ServerId(1),
                &parked.encode(),
            )
            .unwrap();
        py.on_prediction_delivered(a2, &m2, &mut ctl);
        assert_eq!(py.parked_predictions(), 1);

        // Snapshot Pythia and the controller; restore both onto fresh
        // instances of the same scenario.
        let mut w = pythia_snapshot::Writer::new();
        w.section("pythia", |s| py.put_state(s));
        w.section("controller", |s| ctl.put_state(s));
        let bytes = w.finish();
        let mut py2 = PythiaSystem::new(PythiaConfig::default(), &mr.topology, mr.servers.clone());
        let mut ctl2 = Controller::new(
            mr.topology.clone(),
            ControllerConfig::default(),
            &RngFactory::new(3),
        );
        let mut rd = pythia_snapshot::Reader::new(&bytes).unwrap();
        let mut sec = rd.section("pythia").unwrap();
        py2.restore_state(&mr.topology, &mut sec).unwrap();
        sec.finish().unwrap();
        let mut sec = rd.section("controller").unwrap();
        ctl2.restore_state(&mut sec).unwrap();
        sec.finish().unwrap();

        // Re-snapshot is byte-identical and both halves continue in
        // lock-step: the parked prediction resolves into the same rules.
        assert_eq!(snap(&py2), snap(&py));
        let at = SimTime::from_secs(2);
        let r1 = py.on_reducer_launched(at, JobId(0), ReducerId(1), ServerId(6), &mut ctl);
        let r2 = py2.on_reducer_launched(at, JobId(0), ReducerId(1), ServerId(6), &mut ctl2);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
        assert!(!r1.is_empty());
        // Draining a fetch keeps them in lock-step too.
        py.on_fetch_completed(
            JobId(0),
            MapTaskId(0),
            ReducerId(0),
            ServerId(0),
            ServerId(5),
        );
        py2.on_fetch_completed(
            JobId(0),
            MapTaskId(0),
            ReducerId(0),
            ServerId(0),
            ServerId(5),
        );
        assert_eq!(
            py.outstanding(mr.servers[0], mr.servers[5]),
            py2.outstanding(mr.servers[0], mr.servers[5])
        );
        assert_eq!(snap(&py2), snap(&py));
    }

    #[test]
    fn restore_onto_smaller_cluster_is_a_typed_error() {
        let (mr, mut ctl, mut py) = setup();
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(5), &mut ctl);
        let bytes = snap(&py);
        let mut small = PythiaSystem::new(
            PythiaConfig::default(),
            &mr.topology,
            mr.servers[..4].to_vec(),
        );
        let mut rd = pythia_snapshot::Reader::new(&bytes).unwrap();
        let mut sec = rd.section("pythia").unwrap();
        match small.restore_state(&mr.topology, &mut sec) {
            Err(pythia_snapshot::SnapshotError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn background_steers_placement() {
        let (mr, mut ctl, mut py) = setup();
        py.on_reducer_launched(SimTime::ZERO, JobId(0), ReducerId(0), ServerId(5), &mut ctl);
        // Trunk 0 (first cable tor0→tor1) carries 9.9 Gb/s of background.
        let trunk0 = mr.topology.find_link(mr.tors[0], mr.tors[1], 0).unwrap();
        py.set_background(trunk0, 9.9e9);
        let index = IndexFile::from_partition_sizes(&[10_000_000], 1.0);
        let (m1, a1) = py
            .on_spill(
                SimTime::ZERO,
                JobId(0),
                MapTaskId(0),
                ServerId(0),
                &index.encode(),
            )
            .unwrap();
        let rules = py.on_prediction_delivered(a1, &m1, &mut ctl);
        // The rule at tor0 must avoid the loaded trunk.
        let tor0_rule = rules.iter().find(|r| r.switch == mr.tors[0]).unwrap();
        assert_ne!(tor0_rule.rule.out_link, trunk0);
    }
}
