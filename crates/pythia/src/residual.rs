//! Incrementally-maintained per-link residual bandwidth.
//!
//! The allocator scores candidate paths by their bottleneck residual
//! `min over links of (capacity − background)`. Re-deriving that from a
//! `background_bps(link)` callback per path hop per active pair per tick
//! is O(pairs · paths · hops) callback invocations; at 1k-server scale
//! the same background value is recomputed thousands of times. This
//! table stores the residual per link and updates it only when a link's
//! background actually changes, making every path score a plain array
//! min — O(1) per link, no callbacks.

use pythia_netsim::{LinkId, Path, Topology};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};

/// Per-link background load and residual capacity, kept in sync so
/// residual reads never recompute.
#[derive(Debug, Clone)]
pub struct ResidualTable {
    capacity: Vec<f64>,
    background: Vec<f64>,
    residual: Vec<f64>,
    /// Bumped on every background write — the invalidation key for
    /// anything caching values derived from residuals (the placement
    /// candidate cache keys on it). Same-epoch reads are guaranteed
    /// bit-identical to a fresh recompute.
    epoch: u64,
}

impl ResidualTable {
    /// A table over `topo`'s links with zero background everywhere.
    pub fn new(topo: &Topology) -> Self {
        let capacity: Vec<f64> = (0..topo.num_links())
            .map(|i| topo.link(LinkId(i as u32)).capacity_bps)
            .collect();
        let residual = capacity.clone();
        ResidualTable {
            background: vec![0.0; capacity.len()],
            capacity,
            residual,
            epoch: 0,
        }
    }

    /// Set one link's background load (bits/sec) and refresh its residual.
    pub fn set_background(&mut self, link: LinkId, bps: f64) {
        let i = link.0 as usize;
        self.background[i] = bps;
        self.residual[i] = (self.capacity[i] - bps).max(0.0);
        self.epoch += 1;
    }

    /// Bulk refresh from a full per-link load vector (the engine's
    /// background redraw produces one).
    pub fn set_background_from(&mut self, loads: &[f64]) {
        assert_eq!(loads.len(), self.capacity.len());
        for (i, &bps) in loads.iter().enumerate() {
            self.background[i] = bps;
            self.residual[i] = (self.capacity[i] - bps).max(0.0);
        }
        self.epoch += 1;
    }

    /// Monotone write counter: unchanged epoch ⇒ unchanged residuals.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current background load on `link` (bits/sec).
    pub fn background_bps(&self, link: LinkId) -> f64 {
        self.background[link.0 as usize]
    }

    /// Residual capacity on `link`: `(capacity − background).max(0)`.
    pub fn residual_bps(&self, link: LinkId) -> f64 {
        self.residual[link.0 as usize]
    }

    /// Serialize the background vector; capacities and residuals are
    /// derived (bit-exactly, via the same `max(0.0)` update) on restore.
    pub fn put_state(&self, w: &mut SectionWriter) {
        self.background.put(w);
    }

    /// Restore background loads onto a table built for the same topology.
    pub fn restore_state(&mut self, r: &mut SectionReader) -> Result<(), SnapshotError> {
        let background = Vec::<f64>::get(r)?;
        if background.len() != self.capacity.len() {
            return Err(r.malformed(format!(
                "background vector for {} links, topology has {}",
                background.len(),
                self.capacity.len()
            )));
        }
        for (i, &bps) in background.iter().enumerate() {
            if !bps.is_finite() || bps < 0.0 {
                return Err(r.malformed(format!("background load {bps} on link {i}")));
            }
        }
        self.set_background_from(&background);
        Ok(())
    }

    /// Bottleneck residual along `path` (min over its links).
    pub fn path_residual_bps(&self, path: &Path) -> f64 {
        path.links()
            .iter()
            .map(|&l| self.residual[l.0 as usize])
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_netsim::{build_multi_rack, MultiRackParams};

    #[test]
    fn residual_tracks_background() {
        let mr = build_multi_rack(&MultiRackParams::default());
        let mut t = ResidualTable::new(&mr.topology);
        let trunk = mr.trunk_links[0];
        let cap = mr.topology.link(trunk).capacity_bps;
        assert_eq!(t.residual_bps(trunk), cap);
        t.set_background(trunk, 4e9);
        assert_eq!(t.background_bps(trunk), 4e9);
        assert_eq!(t.residual_bps(trunk), cap - 4e9);
        // Oversubscribed links floor at zero, exactly like the old
        // `(capacity - background).max(0.0)` inline computation.
        t.set_background(trunk, cap + 1e9);
        assert_eq!(t.residual_bps(trunk), 0.0);
    }

    #[test]
    fn path_residual_is_bottleneck_min() {
        let mr = build_multi_rack(&MultiRackParams::default());
        let mut t = ResidualTable::new(&mr.topology);
        let paths =
            pythia_openflow::k_shortest_paths(&mr.topology, mr.servers[0], mr.servers[5], 1);
        let p = &paths[0];
        // NIC-limited at 1 Gb/s when idle.
        assert_eq!(t.path_residual_bps(p), 1e9);
        // Loading the trunk below NIC speed moves the bottleneck there.
        t.set_background(p.links()[1], 9.5e9);
        assert_eq!(t.path_residual_bps(p), 0.5e9);
    }

    #[test]
    fn bulk_refresh_matches_per_link_sets() {
        let mr = build_multi_rack(&MultiRackParams::default());
        let mut a = ResidualTable::new(&mr.topology);
        let mut b = ResidualTable::new(&mr.topology);
        let loads: Vec<f64> = (0..mr.topology.num_links())
            .map(|i| i as f64 * 1e8)
            .collect();
        a.set_background_from(&loads);
        for (i, &l) in loads.iter().enumerate() {
            b.set_background(LinkId(i as u32), l);
        }
        for i in 0..loads.len() {
            let link = LinkId(i as u32);
            assert_eq!(a.residual_bps(link), b.residual_bps(link));
        }
    }
}
