//! The management-network channel model.
//!
//! The paper keeps all Pythia control traffic — instrumentation agents →
//! collector — on a dedicated management network (§III) and implicitly
//! assumes it is lossless and in-order. This module drops that assumption:
//! a [`MgmtNet`] models a datagram channel with configurable loss,
//! duplication and latency jitter, and an agent-side reliability layer
//! (retransmit on missing ack, exponential backoff, bounded retries).
//!
//! Delivery is **at-least-zero, at-most-many**: a message can be lost
//! outright (every retry exhausted), arrive once, or arrive several times
//! (duplicated by the network, or re-sent after a *delayed* rather than
//! lost ack). Arrival order across messages is not preserved — jittered
//! latencies reorder freely. End-to-end safety therefore rests on the
//! collector's idempotent, keyed ingestion ([`crate::Collector`]
//! deduplicates by `(job, map)`), mirroring how Hadoop itself survives
//! re-sent heartbeats.
//!
//! With the default (ideal) configuration the channel degenerates to a
//! fixed one-way latency, consumes **no randomness**, and is bit-identical
//! to the historical fault-free path.

use pythia_des::{get_rng, put_rng, SimDuration, SimTime};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};
use rand::rngs::SmallRng;
use rand::Rng;

/// Fault/latency knobs of the management network.
#[derive(Debug, Clone, PartialEq)]
pub struct MgmtNetConfig {
    /// Probability that any single transmission (first send or retry) is
    /// lost before reaching the collector.
    pub loss_prob: f64,
    /// Probability that a delivered transmission is duplicated by the
    /// network (a second copy arrives with independent jitter).
    pub dup_prob: f64,
    /// Maximum extra one-way latency, sampled uniformly per delivered
    /// copy on top of the base management latency. Non-zero jitter
    /// reorders messages.
    pub jitter: SimDuration,
    /// Agent-side retransmission timer for the first retry; doubles on
    /// every further retry (exponential backoff).
    pub retry_timeout: SimDuration,
    /// Retransmissions attempted after the initial send before the agent
    /// gives the message up for lost.
    pub max_retries: u32,
}

impl Default for MgmtNetConfig {
    fn default() -> Self {
        MgmtNetConfig {
            loss_prob: 0.0,
            dup_prob: 0.0,
            jitter: SimDuration::ZERO,
            retry_timeout: SimDuration::from_millis(50),
            max_retries: 4,
        }
    }
}

impl MgmtNetConfig {
    /// True when the channel is perfect: no loss, no duplication, no
    /// jitter. The ideal channel consumes no randomness, keeping the
    /// fault-free path bit-identical to a build without this module.
    pub fn is_ideal(&self) -> bool {
        self.loss_prob == 0.0 && self.dup_prob == 0.0 && self.jitter == SimDuration::ZERO
    }

    /// Panics if probabilities are outside [0, 1]. `loss_prob == 1.0`
    /// (a black-hole management network) is a valid chaos scenario: every
    /// message exhausts its retries and the collector hears nothing.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss_prob),
            "loss_prob must be in [0, 1], got {}",
            self.loss_prob
        );
        assert!(
            (0.0..=1.0).contains(&self.dup_prob),
            "dup_prob must be in [0, 1], got {}",
            self.dup_prob
        );
    }
}

/// Channel-level degradation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MgmtNetStats {
    /// Messages handed to the channel by agents.
    pub messages_sent: u64,
    /// Copies that reached the collector (≥ messages delivered, because
    /// of duplication).
    pub deliveries: u64,
    /// Individual transmissions lost in flight (each triggers a retry
    /// while the budget lasts).
    pub transmissions_lost: u64,
    /// Extra copies delivered by network duplication.
    pub duplicates_delivered: u64,
    /// Messages lost outright: every retry exhausted.
    pub messages_lost: u64,
}

impl Persist for MgmtNetStats {
    fn put(&self, w: &mut SectionWriter) {
        self.messages_sent.put(w);
        self.deliveries.put(w);
        self.transmissions_lost.put(w);
        self.duplicates_delivered.put(w);
        self.messages_lost.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(MgmtNetStats {
            messages_sent: u64::get(r)?,
            deliveries: u64::get(r)?,
            transmissions_lost: u64::get(r)?,
            duplicates_delivered: u64::get(r)?,
            messages_lost: u64::get(r)?,
        })
    }
}

/// The agent → collector channel: loss, duplication, jitter, retries.
#[derive(Debug)]
pub struct MgmtNet {
    cfg: MgmtNetConfig,
    rng: SmallRng,
    /// Degradation counters, for the run report.
    pub stats: MgmtNetStats,
}

impl MgmtNet {
    /// A channel with the given fault model, drawing from `rng`.
    pub fn new(cfg: MgmtNetConfig, rng: SmallRng) -> Self {
        cfg.validate();
        MgmtNet {
            cfg,
            rng,
            stats: MgmtNetStats::default(),
        }
    }

    /// The fault model in force.
    pub fn config(&self) -> &MgmtNetConfig {
        &self.cfg
    }

    /// One agent sends one message at `now` over a channel whose fault-free
    /// one-way latency is `base_latency`. Returns every instant at which a
    /// copy arrives at the collector — empty if the message is lost for
    /// good after `max_retries` retransmissions.
    ///
    /// The reliability layer is stop-and-wait per message: the agent
    /// retransmits `retry_timeout` after a lost transmission, doubling the
    /// timer each time. The first successful transmission ends the retry
    /// loop (its ack stops the timer); the network may still have
    /// duplicated the copy in flight.
    pub fn transmit(&mut self, now: SimTime, base_latency: SimDuration) -> Vec<SimTime> {
        self.stats.messages_sent += 1;
        if self.cfg.is_ideal() {
            self.stats.deliveries += 1;
            return vec![now + base_latency];
        }
        let mut arrivals = Vec::new();
        let mut send_at = now;
        let mut timeout = self.cfg.retry_timeout;
        for attempt in 0..=self.cfg.max_retries {
            let lost = self.cfg.loss_prob > 0.0 && self.bernoulli(self.cfg.loss_prob);
            if !lost {
                arrivals.push(send_at + base_latency + self.sample_jitter());
                self.stats.deliveries += 1;
                if self.cfg.dup_prob > 0.0 && self.bernoulli(self.cfg.dup_prob) {
                    arrivals.push(send_at + base_latency + self.sample_jitter());
                    self.stats.deliveries += 1;
                    self.stats.duplicates_delivered += 1;
                }
                break;
            }
            self.stats.transmissions_lost += 1;
            if attempt == self.cfg.max_retries {
                self.stats.messages_lost += 1;
            }
            send_at += timeout;
            timeout = timeout + timeout; // exponential backoff
        }
        arrivals
    }

    /// Serialize the channel's RNG position and degradation counters (the
    /// fault model itself is scenario configuration). Retry state needs no
    /// section of its own: the stop-and-wait loop runs to completion
    /// inside [`MgmtNet::transmit`], so between events the only mutable
    /// state is the RNG and the stats.
    pub fn put_state(&self, w: &mut SectionWriter) {
        put_rng(w, &self.rng);
        self.stats.put(w);
    }

    /// Restore RNG position and counters onto a freshly constructed
    /// channel with the same fault model.
    pub fn restore_state(&mut self, r: &mut SectionReader) -> Result<(), SnapshotError> {
        self.rng = get_rng(r)?;
        self.stats = MgmtNetStats::get(r)?;
        Ok(())
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.random_range(0.0..1.0) < p
    }

    fn sample_jitter(&mut self) -> SimDuration {
        if self.cfg.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            self.cfg.jitter.mul_f64(self.rng.random_range(0.0..1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_des::RngFactory;

    fn rng(seed: u64) -> SmallRng {
        RngFactory::new(seed).stream("mgmtnet-test")
    }

    #[test]
    fn ideal_channel_is_a_fixed_delay() {
        let mut net = MgmtNet::new(MgmtNetConfig::default(), rng(1));
        let base = SimDuration::from_millis(1);
        for s in 0..50u64 {
            let t = SimTime::from_secs(s);
            assert_eq!(net.transmit(t, base), vec![t + base]);
        }
        assert_eq!(net.stats.messages_sent, 50);
        assert_eq!(net.stats.deliveries, 50);
        assert_eq!(net.stats.transmissions_lost, 0);
        assert_eq!(net.stats.messages_lost, 0);
    }

    #[test]
    fn lossy_channel_retries_with_backoff() {
        // Certain-ish loss: every arrival must come from a delayed retry.
        let cfg = MgmtNetConfig {
            loss_prob: 0.9,
            retry_timeout: SimDuration::from_millis(50),
            max_retries: 3,
            ..Default::default()
        };
        let mut net = MgmtNet::new(cfg, rng(2));
        let base = SimDuration::from_millis(1);
        let mut delivered = 0u32;
        for s in 0..200u64 {
            let t = SimTime::from_millis(s * 10);
            for at in net.transmit(t, base) {
                delivered += 1;
                // Arrivals only at t + backoff-sum + base: 1, 51, 151, 351 ms.
                let offset = at.since(t);
                let valid = [1u64, 51, 151, 351]
                    .iter()
                    .any(|&ms| offset == SimDuration::from_millis(ms));
                assert!(valid, "unexpected arrival offset {offset}");
            }
        }
        assert!(net.stats.transmissions_lost > 0, "0.9 loss must drop some");
        assert!(net.stats.messages_lost > 0, "budget must exhaust sometimes");
        assert!(delivered > 0, "retries must save some messages");
        assert_eq!(net.stats.deliveries, u64::from(delivered));
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let cfg = MgmtNetConfig {
            dup_prob: 0.5,
            ..Default::default()
        };
        let mut net = MgmtNet::new(cfg, rng(3));
        let mut total = 0;
        for s in 0..100u64 {
            total += net
                .transmit(SimTime::from_secs(s), SimDuration::from_millis(1))
                .len();
        }
        assert!(total > 100, "duplicates must inflate arrivals, got {total}");
        assert_eq!(net.stats.duplicates_delivered as usize, total - 100);
    }

    #[test]
    fn jitter_reorders_messages() {
        let cfg = MgmtNetConfig {
            jitter: SimDuration::from_millis(100),
            ..Default::default()
        };
        let mut net = MgmtNet::new(cfg, rng(4));
        // Two messages 1 ms apart with 100 ms jitter: some pair inverts.
        let mut inverted = false;
        for s in 0..100u64 {
            let t0 = SimTime::from_millis(s * 1000);
            let t1 = SimTime::from_millis(s * 1000 + 1);
            let a = net.transmit(t0, SimDuration::from_millis(1))[0];
            let b = net.transmit(t1, SimDuration::from_millis(1))[0];
            if b < a {
                inverted = true;
            }
        }
        assert!(inverted, "jitter must reorder adjacent sends");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = MgmtNetConfig {
                loss_prob: 0.3,
                dup_prob: 0.2,
                jitter: SimDuration::from_millis(10),
                ..Default::default()
            };
            let mut net = MgmtNet::new(cfg, rng(seed));
            let mut all = Vec::new();
            for s in 0..50u64 {
                all.extend(net.transmit(SimTime::from_secs(s), SimDuration::from_millis(1)));
            }
            all
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "loss_prob")]
    fn out_of_range_loss_is_rejected() {
        let cfg = MgmtNetConfig {
            loss_prob: 1.5,
            ..Default::default()
        };
        MgmtNet::new(cfg, rng(1));
    }

    #[test]
    fn state_round_trip_continues_rng_sequence() {
        let cfg = MgmtNetConfig {
            loss_prob: 0.3,
            dup_prob: 0.2,
            jitter: SimDuration::from_millis(10),
            ..Default::default()
        };
        let mut a = MgmtNet::new(cfg.clone(), rng(7));
        for s in 0..25u64 {
            a.transmit(SimTime::from_secs(s), SimDuration::from_millis(1));
        }
        let mut w = pythia_snapshot::Writer::new();
        w.section("mgmt", |s| a.put_state(s));
        let bytes = w.finish();
        // Restore onto a channel seeded differently: the snapshot's RNG
        // position wins, so both continue the same jittered sequence.
        let mut b = MgmtNet::new(cfg, rng(99));
        let mut sec = pythia_snapshot::Reader::new(&bytes)
            .unwrap()
            .section("mgmt")
            .unwrap();
        b.restore_state(&mut sec).unwrap();
        sec.finish().unwrap();
        assert_eq!(a.stats, b.stats);
        for s in 25..60u64 {
            let t = SimTime::from_secs(s);
            assert_eq!(
                a.transmit(t, SimDuration::from_millis(1)),
                b.transmit(t, SimDuration::from_millis(1))
            );
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn total_loss_delivers_nothing() {
        let cfg = MgmtNetConfig {
            loss_prob: 1.0,
            max_retries: 3,
            ..Default::default()
        };
        let mut net = MgmtNet::new(cfg, rng(5));
        for s in 0..20u64 {
            assert!(net
                .transmit(SimTime::from_secs(s), SimDuration::from_millis(1))
                .is_empty());
        }
        assert_eq!(net.stats.messages_lost, 20);
        assert_eq!(net.stats.deliveries, 0);
        // Every message burned its full retry budget.
        assert_eq!(net.stats.transmissions_lost, 20 * 4);
    }
}
