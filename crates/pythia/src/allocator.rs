//! The predictive flow-allocation module (§IV).
//!
//! Multi-commodity flow is NP-complete for unsplittable flows, so the
//! paper uses a **first-fit bin-packing heuristic**: aggregated predicted
//! transfers are assigned, largest-demand-first, to the k-shortest path
//! with the **highest available bandwidth**, where "available" subtracts
//! the *background* load (known from the link-load service, with Pythia's
//! own shuffle traffic differentiated out using application knowledge)
//! and the predicted shuffle volume already planned onto the path.
//!
//! Our concrete realization of "highest available bandwidth" for a
//! size-aware packer: place the transfer where its **estimated completion
//! time** — `(bytes already planned across the path's bottleneck + this
//! transfer) / residual bandwidth` — is smallest. With an empty plan this
//! degenerates to exactly "the path with the highest residual bandwidth";
//! with a non-empty plan it is greedy makespan (LPT) packing, which is
//! what first-fit-decreasing achieves on bins.
//!
//! Flow *criticality* (the differentiator the paper claims over FlowComb,
//! §VI) enters through the demand volumes themselves: pairs feeding
//! heavily-loaded reducers carry more outstanding bytes, and the packer
//! sizes their share of the fabric accordingly.
//!
//! Candidates are passed as two parallel slices — `paths: &[Path]`
//! (typically borrowed straight from the controller's memoized k-shortest
//! set) and `resids: &[f64]` — so the steady-state control loop never
//! clones a `Path` just to score it; the allocator clones only the path
//! it actually assigns.

use std::collections::BTreeMap;

use pythia_netsim::persist::{get_path, put_path};
use pythia_netsim::{LinkId, NodeId, Path, Topology};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};

/// Resolve each `(src, dst, parallel_index)` hop against the topology
/// into a candidate [`Path`]. Returns `None` when any hop has no link at
/// the requested index or the sequence is not a valid path — a degraded
/// or non-dumbbell fabric then simply offers fewer candidates (down to
/// [`Placement::NoPath`]) instead of panicking.
pub fn resolve_hops(topo: &Topology, hops: &[(NodeId, NodeId, usize)]) -> Option<Path> {
    let links: Option<Vec<LinkId>> = hops
        .iter()
        .map(|&(a, b, k)| topo.find_link(a, b, k))
        .collect();
    Path::new(topo, links?).ok()
}

/// Result of placing demand for a pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// The pair was idle (or new): it is now assigned to this path and
    /// rules must be (re)installed.
    Assign(Path),
    /// The pair already had outstanding bytes on an installed path; the
    /// new demand joins it, no rule churn.
    Keep,
    /// No candidate paths were offered (disconnected pair).
    NoPath,
}

#[derive(Debug, Clone)]
struct Assignment {
    path: Path,
    outstanding: u64,
}

/// Cached per-pair candidate geometry: the partition of each candidate's
/// links into shared (every candidate crosses them — the NIC access legs)
/// and distinctive (the trunk choice the placement actually controls).
/// Pure path-set derived data, so it stays valid while the caller's
/// `paths_epoch` — bumped by the controller on any path-set invalidation
/// — is unchanged; repeat placements on an unchanged fabric then skip the
/// O(k²·hops) common-link scan of a full `place()`.
#[derive(Debug, Clone)]
struct CandGeometry {
    paths_epoch: u64,
    n_paths: usize,
    /// Candidate `i`'s distinctive links are
    /// `links[offsets[i]..offsets[i+1]]`, in path order — the score
    /// domain of `place`. One flat buffer plus an offset table (instead
    /// of k nested vectors) so epoch refreshes rewrite in place without
    /// touching the heap.
    offsets: Vec<u32>,
    links: Vec<LinkId>,
}

impl CandGeometry {
    /// Links of candidate `i` that *not* every candidate crosses.
    fn distinct(&self, i: usize) -> &[LinkId] {
        &self.links[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The allocator: pair → path assignments plus per-link planned volume.
#[derive(Debug, Default)]
pub struct FlowAllocator {
    assignments: BTreeMap<(NodeId, NodeId), Assignment>,
    /// Outstanding predicted bytes planned per link, dense-indexed by
    /// `LinkId` and grown lazily (links never planned onto stay absent).
    planned_link_bytes: Vec<u64>,
    /// Active pairs assigned per link (the size-blind load signal).
    planned_link_pairs: Vec<u64>,
    /// Links shared by every candidate, rebuilt per score; kept here so
    /// the steady-state control loop does not allocate.
    common_scratch: Vec<LinkId>,
    /// Per-pair candidate geometry memo for the epoch-keyed fast path
    /// (see [`CandGeometry`]). Bypassed entirely by the plain
    /// [`FlowAllocator::place`]/[`FlowAllocator::reassign`] calls.
    cand_cache: BTreeMap<(NodeId, NodeId), CandGeometry>,
    /// When false, placement ignores predicted volumes (FlowComb-like
    /// mode): load is counted in *pairs*, not bytes.
    size_blind: bool,
    /// New path assignments made (rule installs triggered).
    pub placements: u64,
    /// Demands stacked onto an already-active pair (no rule churn).
    pub keeps: u64,
}

/// `table[link] += v`, growing the table on first touch of a link.
fn table_add(table: &mut Vec<u64>, links: &[LinkId], v: u64) {
    for &l in links {
        let i = l.0 as usize;
        if i >= table.len() {
            table.resize(i + 1, 0);
        }
        table[i] += v;
    }
}

/// `table[link] -= v`, saturating; links never grown read as zero.
fn table_sub(table: &mut [u64], links: &[LinkId], v: u64) {
    for &l in links {
        if let Some(s) = table.get_mut(l.0 as usize) {
            *s = s.saturating_sub(v);
        }
    }
}

fn table_get(table: &[u64], l: LinkId) -> u64 {
    table.get(l.0 as usize).copied().unwrap_or(0)
}

impl FlowAllocator {
    /// A size-aware (full Pythia) allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A FlowComb-like allocator: sees that transfers exist, not how big
    /// they are.
    pub fn new_size_blind() -> Self {
        FlowAllocator {
            size_blind: true,
            ..Self::default()
        }
    }

    /// The load metric on one link, in the allocator's current units
    /// (bytes when size-aware, active-pair count scaled to a nominal
    /// transfer size when size-blind).
    fn link_load_metric(&self, l: LinkId) -> u64 {
        if self.size_blind {
            table_get(&self.planned_link_pairs, l)
        } else {
            table_get(&self.planned_link_bytes, l)
        }
    }

    /// The weight a new transfer contributes to the load metric.
    fn demand_metric(&self, bytes: u64) -> u64 {
        if self.size_blind {
            1
        } else {
            bytes
        }
    }

    /// Stack `bytes` of demand onto `pair` *if it resolves without a
    /// path decision*: an active pair absorbs the demand onto its
    /// installed path (exactly [`Placement::Keep`]), and a zero-byte
    /// demand is a no-op Keep. Returns `false` when the pair is idle or
    /// new — the caller must then gather candidates and [`place`]. This
    /// is the demand-stream fast path: the overwhelmingly common repeat
    /// demand on an unchanged assignment skips candidate-path resolution
    /// and residual reads entirely, with mutations bit-identical to the
    /// Keep branch of a full [`place`] call.
    ///
    /// [`place`]: FlowAllocator::place
    pub fn stack_demand(&mut self, pair: (NodeId, NodeId), bytes: u64) -> bool {
        if bytes == 0 {
            return true;
        }
        if let Some(a) = self.assignments.get_mut(&pair) {
            if a.outstanding > 0 {
                a.outstanding += bytes;
                table_add(&mut self.planned_link_bytes, a.path.links(), bytes);
                self.keeps += 1;
                return true;
            }
        }
        false
    }

    /// Add `bytes` of predicted demand for `pair`, choosing a path if the
    /// pair is idle. `resids[i]` is candidate `paths[i]`'s residual
    /// (background-free) bandwidth in bits/sec.
    pub fn place(
        &mut self,
        pair: (NodeId, NodeId),
        bytes: u64,
        paths: &[Path],
        resids: &[f64],
    ) -> Placement {
        self.place_impl(pair, bytes, paths, resids, None)
    }

    /// [`FlowAllocator::place`] through the epoch-keyed fast path: the
    /// pair's candidate geometry (common/distinct link partition) is
    /// served from a per-pair memo while `paths_epoch` — the controller's
    /// path-set invalidation counter — is unchanged, skipping the full
    /// candidate scan setup on every repeat placement against an
    /// unchanged fabric. Decisions are bit-identical to [`place`]: the
    /// cached geometry is exactly what the scan would recompute.
    ///
    /// [`place`]: FlowAllocator::place
    pub fn place_epoch(
        &mut self,
        pair: (NodeId, NodeId),
        bytes: u64,
        paths: &[Path],
        resids: &[f64],
        paths_epoch: u64,
    ) -> Placement {
        self.place_impl(pair, bytes, paths, resids, Some(paths_epoch))
    }

    /// Refresh the pair's geometry memo if stale. Only called on the
    /// epoch-keyed path.
    fn refresh_geometry(&mut self, pair: (NodeId, NodeId), paths: &[Path], paths_epoch: u64) {
        let g = self.cand_cache.entry(pair).or_insert_with(|| CandGeometry {
            // Unreachable candidate count, so a fresh entry always takes
            // the refill below (epochs count up from zero).
            paths_epoch: 0,
            n_paths: usize::MAX,
            offsets: Vec::new(),
            links: Vec::new(),
        });
        if g.paths_epoch == paths_epoch && g.n_paths == paths.len() {
            return;
        }
        g.links.clear();
        g.offsets.clear();
        g.offsets.push(0);
        for p in paths {
            g.links.extend(
                p.links()
                    .iter()
                    .copied()
                    .filter(|&l| !paths.iter().all(|q| q.contains_link(l))),
            );
            g.offsets.push(g.links.len() as u32);
        }
        g.paths_epoch = paths_epoch;
        g.n_paths = paths.len();
    }

    fn place_impl(
        &mut self,
        pair: (NodeId, NodeId),
        bytes: u64,
        paths: &[Path],
        resids: &[f64],
        paths_epoch: Option<u64>,
    ) -> Placement {
        debug_assert_eq!(paths.len(), resids.len());
        if bytes == 0 {
            return Placement::Keep;
        }
        if let Some(a) = self.assignments.get_mut(&pair) {
            if a.outstanding > 0 {
                // Active pair: stack the demand on the installed path.
                a.outstanding += bytes;
                table_add(&mut self.planned_link_bytes, a.path.links(), bytes);
                self.keeps += 1;
                return Placement::Keep;
            }
        }
        if paths.is_empty() {
            return Placement::NoPath;
        }
        if let Some(epoch) = paths_epoch {
            self.refresh_geometry(pair, paths, epoch);
        }
        // Links shared by every candidate (the NIC access legs) carry the
        // transfer no matter what we choose; only the distinctive links
        // (the trunk choice) may enter the score, or a loaded shared leg
        // masks the difference and every tie falls onto the first trunk.
        // Pick the path finishing this transfer earliest over the links
        // the decision actually controls.
        let mut best: Option<(f64, usize)> = None;
        if paths_epoch.is_some() {
            // Fast path: the distinctive-link partition comes from the
            // memo just refreshed above.
            let g = &self.cand_cache[&pair];
            for (i, _) in paths.iter().enumerate() {
                if resids[i] <= 0.0 {
                    continue;
                }
                let planned = g
                    .distinct(i)
                    .iter()
                    .map(|&l| self.link_load_metric(l))
                    .max()
                    .unwrap_or(0);
                let eta = (planned + self.demand_metric(bytes)) as f64 * 8.0 / resids[i];
                if best.map(|(b, _)| eta < b).unwrap_or(true) {
                    best = Some((eta, i));
                }
            }
        } else {
            let mut common = std::mem::take(&mut self.common_scratch);
            common.clear();
            common.extend(
                paths[0]
                    .links()
                    .iter()
                    .copied()
                    .filter(|&l| paths.iter().all(|p| p.contains_link(l))),
            );
            for (i, p) in paths.iter().enumerate() {
                if resids[i] <= 0.0 {
                    continue;
                }
                let planned = p
                    .links()
                    .iter()
                    .filter(|l| !common.contains(l))
                    .map(|l| self.link_load_metric(*l))
                    .max()
                    .unwrap_or(0);
                let eta = (planned + self.demand_metric(bytes)) as f64 * 8.0 / resids[i];
                if best.map(|(b, _)| eta < b).unwrap_or(true) {
                    best = Some((eta, i));
                }
            }
            self.common_scratch = common;
        }
        // All candidates fully saturated by background: fall back to the
        // raw highest-residual path (index 0 if every residual is zero).
        let idx = match best {
            Some((_, i)) => i,
            None => resids
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap(),
        };
        let path = paths[idx].clone();
        table_add(&mut self.planned_link_bytes, path.links(), bytes);
        table_add(&mut self.planned_link_pairs, path.links(), 1);
        self.assignments.insert(
            pair,
            Assignment {
                path: path.clone(),
                outstanding: bytes,
            },
        );
        self.placements += 1;
        Placement::Assign(path)
    }

    /// Re-evaluate an *active* pair after network conditions changed
    /// (background shift, link failure). Moves the pair — returning the
    /// new path — only when the best alternative finishes its remaining
    /// bytes at least `improvement` times faster than the current path
    /// would; hysteresis keeps rule churn bounded.
    pub fn reassign(
        &mut self,
        pair: (NodeId, NodeId),
        paths: &[Path],
        resids: &[f64],
        improvement: f64,
    ) -> Option<Path> {
        self.reassign_impl(pair, paths, resids, improvement, None)
    }

    /// [`FlowAllocator::reassign`] through the epoch-keyed fast path —
    /// same geometry memo as [`FlowAllocator::place_epoch`], same
    /// bit-identical decisions.
    pub fn reassign_epoch(
        &mut self,
        pair: (NodeId, NodeId),
        paths: &[Path],
        resids: &[f64],
        improvement: f64,
        paths_epoch: u64,
    ) -> Option<Path> {
        self.reassign_impl(pair, paths, resids, improvement, Some(paths_epoch))
    }

    fn reassign_impl(
        &mut self,
        pair: (NodeId, NodeId),
        paths: &[Path],
        resids: &[f64],
        improvement: f64,
        paths_epoch: Option<u64>,
    ) -> Option<Path> {
        assert!(improvement >= 1.0);
        debug_assert_eq!(paths.len(), resids.len());
        let outstanding = match self.assignments.get(&pair) {
            Some(a) if a.outstanding > 0 => a.outstanding,
            _ => return None,
        };
        // Score without this pair's own planned bytes.
        {
            let a = &self.assignments[&pair];
            table_sub(&mut self.planned_link_bytes, a.path.links(), outstanding);
        }
        if let Some(epoch) = paths_epoch {
            if !paths.is_empty() {
                self.refresh_geometry(pair, paths, epoch);
            }
        }
        let mut common = std::mem::take(&mut self.common_scratch);
        common.clear();
        if paths_epoch.is_none() {
            if let Some(first) = paths.first() {
                common.extend(
                    first
                        .links()
                        .iter()
                        .copied()
                        .filter(|&l| paths.iter().all(|p| p.contains_link(l))),
                );
            }
        }
        let geometry = paths_epoch.and_then(|_| self.cand_cache.get(&pair));
        let current = &self.assignments[&pair].path;
        // `i` is the candidate's index (its distinctive links in the
        // memo); the slow path filters against `common` instead —
        // identical link sets either way.
        let eta = |i: usize, path: &Path, resid: f64| -> f64 {
            if resid <= 0.0 {
                return f64::INFINITY;
            }
            let planned = match geometry {
                Some(g) => g
                    .distinct(i)
                    .iter()
                    .map(|&l| self.link_load_metric(l))
                    .max()
                    .unwrap_or(0),
                None => path
                    .links()
                    .iter()
                    .filter(|l| !common.contains(l))
                    .map(|l| self.link_load_metric(*l))
                    .max()
                    .unwrap_or(0),
            };
            (planned + self.demand_metric(outstanding)) as f64 * 8.0 / resid
        };
        let current_eta = paths
            .iter()
            .zip(resids)
            .enumerate()
            .find(|(_, (p, _))| p.links() == current.links())
            .map(|(i, (p, &r))| eta(i, p, r))
            .unwrap_or(f64::INFINITY);
        let best = paths
            .iter()
            .zip(resids)
            .enumerate()
            .map(|(i, (p, &r))| (eta(i, p, r), p))
            .min_by(|a, b| a.0.total_cmp(&b.0));
        let moved = match best {
            Some((best_eta, p))
                if p.links() != current.links()
                    && best_eta.is_finite()
                    && best_eta * improvement < current_eta =>
            {
                Some(p.clone())
            }
            _ => None,
        };
        self.common_scratch = common;
        match &moved {
            Some(path) => {
                table_add(&mut self.planned_link_bytes, path.links(), outstanding);
                {
                    let a = &self.assignments[&pair];
                    table_sub(&mut self.planned_link_pairs, a.path.links(), 1);
                }
                table_add(&mut self.planned_link_pairs, path.links(), 1);
                self.assignments.get_mut(&pair).unwrap().path = path.clone();
                self.placements += 1;
            }
            None => {
                let a = &self.assignments[&pair];
                table_add(&mut self.planned_link_bytes, a.path.links(), outstanding);
            }
        }
        moved
    }

    /// Active pairs (outstanding > 0), in deterministic order.
    pub fn active_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        self.active_pairs_into(&mut out);
        out
    }

    /// [`FlowAllocator::active_pairs`] into a caller-owned buffer, so the
    /// periodic reassignment sweep can reuse one allocation.
    pub fn active_pairs_into(&self, out: &mut Vec<(NodeId, NodeId)>) {
        out.clear();
        out.extend(
            self.assignments
                .iter()
                .filter(|(_, a)| a.outstanding > 0)
                .map(|(&p, _)| p),
        );
    }

    /// A fetch belonging to `pair` completed; remove its predicted bytes
    /// from the plan.
    pub fn drain(&mut self, pair: (NodeId, NodeId), bytes: u64) {
        if let Some(a) = self.assignments.get_mut(&pair) {
            let drained = bytes.min(a.outstanding);
            a.outstanding -= drained;
            table_sub(&mut self.planned_link_bytes, a.path.links(), drained);
            if a.outstanding == 0 {
                table_sub(&mut self.planned_link_pairs, a.path.links(), 1);
            }
        }
    }

    /// Forget a pair entirely (job teardown).
    pub fn remove_pair(&mut self, pair: (NodeId, NodeId)) {
        if let Some(a) = self.assignments.remove(&pair) {
            table_sub(&mut self.planned_link_bytes, a.path.links(), a.outstanding);
            if a.outstanding > 0 {
                table_sub(&mut self.planned_link_pairs, a.path.links(), 1);
            }
        }
        self.cand_cache.remove(&pair);
    }

    /// Current path assignment of a pair, if any.
    pub fn assigned_path(&self, pair: (NodeId, NodeId)) -> Option<&Path> {
        self.assignments.get(&pair).map(|a| &a.path)
    }

    /// Outstanding planned bytes for a pair.
    pub fn outstanding(&self, pair: (NodeId, NodeId)) -> u64 {
        self.assignments
            .get(&pair)
            .map(|a| a.outstanding)
            .unwrap_or(0)
    }

    /// Serialize the full plan. The per-link tables are written verbatim
    /// rather than recomputed from assignments: drains saturate and the
    /// pair table decrements only when a pair idles, so the tables carry
    /// history the assignments alone cannot reproduce.
    pub fn put_state(&self, w: &mut SectionWriter) {
        self.size_blind.put(w);
        (self.assignments.len() as u64).put(w);
        for (&(src, dst), a) in &self.assignments {
            src.put(w);
            dst.put(w);
            put_path(w, &a.path);
            a.outstanding.put(w);
        }
        self.planned_link_bytes.put(w);
        self.planned_link_pairs.put(w);
        self.placements.put(w);
        self.keeps.put(w);
    }

    /// Restore the plan onto a freshly constructed allocator of the same
    /// mode, re-validating every assigned path against `topo`.
    pub fn restore_state(
        &mut self,
        topo: &Topology,
        r: &mut SectionReader,
    ) -> Result<(), SnapshotError> {
        let size_blind = bool::get(r)?;
        if size_blind != self.size_blind {
            return Err(r.malformed("allocator mode (size-aware/size-blind) differs"));
        }
        let n = u64::get(r)? as usize;
        let mut assignments = BTreeMap::new();
        for _ in 0..n {
            let src = NodeId::get(r)?;
            let dst = NodeId::get(r)?;
            let path = get_path(topo, r)?;
            let outstanding = u64::get(r)?;
            let links = path.links();
            if links.is_empty() {
                return Err(r.malformed("assignment with an empty path"));
            }
            if topo.link(links[0]).src != src || topo.link(links[links.len() - 1]).dst != dst {
                return Err(r.malformed(format!("assigned path does not join pair {src}->{dst}")));
            }
            if assignments
                .insert((src, dst), Assignment { path, outstanding })
                .is_some()
            {
                return Err(r.malformed(format!("duplicate assignment for pair {src}->{dst}")));
            }
        }
        let planned_link_bytes = Vec::<u64>::get(r)?;
        let planned_link_pairs = Vec::<u64>::get(r)?;
        if planned_link_bytes.len() > topo.num_links()
            || planned_link_pairs.len() > topo.num_links()
        {
            return Err(r.malformed("planned-link table larger than the topology"));
        }
        self.assignments = assignments;
        self.planned_link_bytes = planned_link_bytes;
        self.planned_link_pairs = planned_link_pairs;
        self.common_scratch.clear();
        // Geometry memo is a cache keyed by the caller's epoch counters,
        // which restart from zero after a restore — drop it cold.
        self.cand_cache.clear();
        self.placements = u64::get(r)?;
        self.keeps = u64::get(r)?;
        Ok(())
    }

    /// Planned bytes at the path's most-loaded link.
    pub fn path_planned_bytes(&self, path: &Path) -> u64 {
        path.links()
            .iter()
            .map(|&l| table_get(&self.planned_link_bytes, l))
            .max()
            .unwrap_or(0)
    }

    /// Outstanding predicted bytes currently planned across `link`.
    pub fn planned_bytes_on_link(&self, link: LinkId) -> u64 {
        table_get(&self.planned_link_bytes, link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_netsim::{build_multi_rack, MultiRack, MultiRackParams};

    /// Up to two candidate cross-rack paths (one per trunk) for a server
    /// pair, as parallel `(paths, resids)` slices. Trunks absent from the
    /// fabric (degraded or single-trunk topologies) yield fewer
    /// candidates rather than a panic.
    fn pair_candidates(
        mr: &MultiRack,
        src: usize,
        dst: usize,
        resid0: f64,
        resid1: f64,
    ) -> (Vec<Path>, Vec<f64>) {
        let t = &mr.topology;
        let mk = |trunk: usize| {
            resolve_hops(
                t,
                &[
                    (mr.servers[src], mr.tors[0], 0),
                    (mr.tors[0], mr.tors[1], trunk),
                    (mr.tors[1], mr.servers[dst], 0),
                ],
            )
        };
        let mut paths = Vec::new();
        let mut resids = Vec::new();
        for (p, r) in [(mk(0), resid0), (mk(1), resid1)] {
            if let Some(p) = p {
                paths.push(p);
                resids.push(r);
            }
        }
        (paths, resids)
    }

    fn candidates(mr: &MultiRack, resid0: f64, resid1: f64) -> (Vec<Path>, Vec<f64>) {
        pair_candidates(mr, 0, 5, resid0, resid1)
    }

    fn mr() -> MultiRack {
        build_multi_rack(&MultiRackParams::default())
    }

    fn pair(mr: &MultiRack) -> (NodeId, NodeId) {
        (mr.servers[0], mr.servers[5])
    }

    #[test]
    fn picks_highest_available_bandwidth_when_plan_empty() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let (paths, resids) = candidates(&mr, 1e9, 5e9);
        match a.place(pair(&mr), 1_000_000, &paths, &resids) {
            Placement::Assign(p) => assert_eq!(p.links(), paths[1].links()),
            other => panic!("expected Assign, got {other:?}"),
        }
    }

    #[test]
    fn balances_load_across_equal_paths() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        // First pair goes somewhere; second pair must take the other trunk
        // (each pair has its own NIC legs; only the trunks are shared).
        let p1 = (mr.servers[0], mr.servers[5]);
        let p2 = (mr.servers[1], mr.servers[6]);
        let (paths1, resids1) = pair_candidates(&mr, 0, 5, 1e9, 1e9);
        let Placement::Assign(path1) = a.place(p1, 100_000_000, &paths1, &resids1) else {
            panic!()
        };
        let (paths2, resids2) = pair_candidates(&mr, 1, 6, 1e9, 1e9);
        let Placement::Assign(path2) = a.place(p2, 100_000_000, &paths2, &resids2) else {
            panic!()
        };
        assert_ne!(
            path1.links()[1],
            path2.links()[1],
            "equal-size transfers must spread across trunks"
        );
    }

    #[test]
    fn size_aware_packing_prefers_emptier_trunk() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        // Big transfer lands on some trunk.
        let (paths, resids) = pair_candidates(&mr, 0, 5, 1e9, 1e9);
        a.place((mr.servers[0], mr.servers[5]), 800_000_000, &paths, &resids);
        // Two small ones should both prefer the other trunk (planned load
        // 800 MB vs 0/100 MB at the shared bottleneck).
        let (paths, resids) = pair_candidates(&mr, 1, 6, 1e9, 1e9);
        let Placement::Assign(p2) =
            a.place((mr.servers[1], mr.servers[6]), 100_000_000, &paths, &resids)
        else {
            panic!()
        };
        let (paths, resids) = pair_candidates(&mr, 2, 7, 1e9, 1e9);
        let Placement::Assign(p3) =
            a.place((mr.servers[2], mr.servers[7]), 100_000_000, &paths, &resids)
        else {
            panic!()
        };
        assert_eq!(p2.links()[1], p3.links()[1]);
        assert_ne!(
            p2.links()[1],
            a.assigned_path((mr.servers[0], mr.servers[5]))
                .unwrap()
                .links()[1]
        );
    }

    #[test]
    fn active_pair_keeps_its_path() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        let p = pair(&mr);
        assert!(matches!(
            a.place(p, 100, &paths, &resids),
            Placement::Assign(_)
        ));
        assert_eq!(a.place(p, 200, &paths, &resids), Placement::Keep);
        assert_eq!(a.outstanding(p), 300);
    }

    #[test]
    fn drained_pair_can_be_reassigned() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        let p = pair(&mr);
        a.place(p, 100, &paths, &resids);
        a.drain(p, 100);
        assert_eq!(a.outstanding(p), 0);
        // Now idle: a new demand re-places (possibly on a new path).
        assert!(matches!(
            a.place(p, 50, &paths, &resids),
            Placement::Assign(_)
        ));
    }

    #[test]
    fn drain_clears_planned_link_bytes() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        let p = pair(&mr);
        let Placement::Assign(path) = a.place(p, 500, &paths, &resids) else {
            panic!()
        };
        let trunk = path.links()[1];
        assert_eq!(a.planned_bytes_on_link(trunk), 500);
        a.drain(p, 500);
        assert_eq!(a.planned_bytes_on_link(trunk), 0);
    }

    #[test]
    fn zero_residual_falls_back_not_crashes() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let (paths, resids) = candidates(&mr, 0.0, 0.0);
        assert!(matches!(
            a.place(pair(&mr), 100, &paths, &resids),
            Placement::Assign(_)
        ));
    }

    #[test]
    fn no_candidates_reports_no_path() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        assert_eq!(a.place(pair(&mr), 100, &[], &[]), Placement::NoPath);
    }

    #[test]
    fn reassign_moves_pair_off_congested_path() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p = pair(&mr);
        // Placed when both trunks were free; trunk of the chosen path then
        // collapses to 50 Mb/s while the other has 950 Mb/s.
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        let Placement::Assign(path0) = a.place(p, 1_000_000, &paths, &resids) else {
            panic!()
        };
        let on_first = path0.links() == paths[0].links();
        let (paths, resids) = if on_first {
            candidates(&mr, 0.05e9, 0.95e9)
        } else {
            candidates(&mr, 0.95e9, 0.05e9)
        };
        let moved = a.reassign(p, &paths, &resids, 1.5).expect("must move");
        assert_ne!(moved.links()[1], path0.links()[1]);
        // Planned bytes follow the move.
        assert_eq!(a.planned_bytes_on_link(path0.links()[1]), 0);
        assert_eq!(a.planned_bytes_on_link(moved.links()[1]), 1_000_000);
    }

    #[test]
    fn reassign_hysteresis_keeps_minor_differences() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p = pair(&mr);
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        a.place(p, 1_000_000, &paths, &resids);
        // 20% better alternative: below the 1.5x bar, stay put.
        let (paths, resids) = candidates(&mr, 1e9, 1.2e9);
        let moved = a.reassign(p, &paths, &resids, 1.5);
        let (paths, resids) = candidates(&mr, 1.2e9, 1e9);
        let moved2 = a.reassign(p, &paths, &resids, 1.5);
        assert!(moved.is_none() || moved2.is_none());
    }

    #[test]
    fn reassign_ignores_idle_and_unknown_pairs() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p = pair(&mr);
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        assert!(a.reassign(p, &paths, &resids, 1.5).is_none());
        a.place(p, 100, &paths, &resids);
        a.drain(p, 100);
        let (paths, resids) = candidates(&mr, 0.01e9, 1e9);
        assert!(a.reassign(p, &paths, &resids, 1.5).is_none());
    }

    #[test]
    fn active_pairs_lists_only_outstanding() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p1 = (mr.servers[0], mr.servers[5]);
        let p2 = (mr.servers[1], mr.servers[6]);
        let (paths, resids) = pair_candidates(&mr, 0, 5, 1e9, 1e9);
        a.place(p1, 100, &paths, &resids);
        let (paths, resids) = pair_candidates(&mr, 1, 6, 1e9, 1e9);
        a.place(p2, 100, &paths, &resids);
        a.drain(p2, 100);
        assert_eq!(a.active_pairs(), vec![p1]);
    }

    #[test]
    fn single_trunk_fabric_yields_one_candidate_not_a_panic() {
        // Regression: the candidate builder used to unwrap find_link for
        // trunk index 1 and panicked on any non-dumbbell fabric.
        let mr = build_multi_rack(&MultiRackParams {
            trunk_count: 1,
            ..MultiRackParams::default()
        });
        let (paths, resids) = pair_candidates(&mr, 0, 5, 1e9, 1e9);
        assert_eq!(paths.len(), 1);
        let mut a = FlowAllocator::new();
        assert!(matches!(
            a.place((mr.servers[0], mr.servers[5]), 100, &paths, &resids),
            Placement::Assign(_)
        ));
    }

    #[test]
    fn resolve_hops_rejects_missing_and_discontinuous_hops() {
        let mr = mr();
        let t = &mr.topology;
        // Parallel index past the trunk count: no such link.
        assert!(resolve_hops(t, &[(mr.tors[0], mr.tors[1], 9)]).is_none());
        // Hops that do not chain: invalid path.
        assert!(resolve_hops(
            t,
            &[
                (mr.servers[0], mr.tors[0], 0),
                (mr.tors[1], mr.servers[5], 0),
            ],
        )
        .is_none());
        // A well-formed hop list still resolves.
        assert!(resolve_hops(
            t,
            &[
                (mr.servers[0], mr.tors[0], 0),
                (mr.tors[0], mr.tors[1], 0),
                (mr.tors[1], mr.servers[5], 0),
            ],
        )
        .is_some());
    }

    #[test]
    fn epoch_fast_path_matches_plain_place() {
        let mr = mr();
        // Two allocators fed an identical demand stream, one through the
        // epoch-keyed geometry memo: every decision must be identical.
        let mut plain = FlowAllocator::new();
        let mut fast = FlowAllocator::new();
        let demands = [
            (0usize, 5usize, 800_000_000u64),
            (1, 6, 100_000_000),
            (2, 7, 100_000_000),
            (1, 6, 50_000_000),
            (0, 5, 25_000_000),
        ];
        for &(s, d, bytes) in &demands {
            let (paths, resids) = pair_candidates(&mr, s, d, 1e9, 1e9);
            let p = (mr.servers[s], mr.servers[d]);
            assert_eq!(
                plain.place(p, bytes, &paths, &resids),
                fast.place_epoch(p, bytes, &paths, &resids, 7)
            );
        }
        // The reassignment sweep agrees too.
        let p = (mr.servers[1], mr.servers[6]);
        let (paths, resids) = pair_candidates(&mr, 1, 6, 0.05e9, 0.95e9);
        assert_eq!(
            plain.reassign(p, &paths, &resids, 1.5),
            fast.reassign_epoch(p, &paths, &resids, 1.5, 7)
        );
    }

    #[test]
    fn epoch_bump_refreshes_geometry() {
        // The memo must not serve geometry computed for an older path set.
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p = pair(&mr);
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        a.place_epoch(p, 100, &paths, &resids, 1);
        a.drain(p, 100);
        // New epoch, one candidate: geometry rebuilds and the only path
        // wins (stale two-candidate geometry would index out of bounds).
        let single = vec![paths[1].clone()];
        match a.place_epoch(p, 100, &single, &resids[1..2], 2) {
            Placement::Assign(got) => assert_eq!(got.links(), paths[1].links()),
            other => panic!("expected Assign, got {other:?}"),
        }
    }

    #[test]
    fn zero_bytes_is_a_noop() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let (paths, resids) = candidates(&mr, 1e9, 1e9);
        assert_eq!(a.place(pair(&mr), 0, &paths, &resids), Placement::Keep);
        assert_eq!(a.outstanding(pair(&mr)), 0);
    }
}
