//! The predictive flow-allocation module (§IV).
//!
//! Multi-commodity flow is NP-complete for unsplittable flows, so the
//! paper uses a **first-fit bin-packing heuristic**: aggregated predicted
//! transfers are assigned, largest-demand-first, to the k-shortest path
//! with the **highest available bandwidth**, where "available" subtracts
//! the *background* load (known from the link-load service, with Pythia's
//! own shuffle traffic differentiated out using application knowledge)
//! and the predicted shuffle volume already planned onto the path.
//!
//! Our concrete realization of "highest available bandwidth" for a
//! size-aware packer: place the transfer where its **estimated completion
//! time** — `(bytes already planned across the path's bottleneck + this
//! transfer) / residual bandwidth` — is smallest. With an empty plan this
//! degenerates to exactly "the path with the highest residual bandwidth";
//! with a non-empty plan it is greedy makespan (LPT) packing, which is
//! what first-fit-decreasing achieves on bins.
//!
//! Flow *criticality* (the differentiator the paper claims over FlowComb,
//! §VI) enters through the demand volumes themselves: pairs feeding
//! heavily-loaded reducers carry more outstanding bytes, and the packer
//! sizes their share of the fabric accordingly.

use std::collections::BTreeMap;

use pythia_netsim::{LinkId, NodeId, Path, Topology};

/// A candidate path with its residual (background-free) bandwidth.
#[derive(Debug, Clone)]
pub struct PathChoice {
    /// The candidate path.
    pub path: Path,
    /// min over links of (capacity − background traffic), bits/sec.
    pub resid_bps: f64,
}

impl PathChoice {
    /// Build a candidate by resolving each `(src, dst, parallel_index)`
    /// hop against the topology. Returns `None` when any hop has no link
    /// at the requested index or the sequence is not a valid path — a
    /// degraded or non-dumbbell fabric then simply offers fewer
    /// candidates (down to [`Placement::NoPath`]) instead of panicking.
    pub fn try_new(
        topo: &Topology,
        hops: &[(NodeId, NodeId, usize)],
        resid_bps: f64,
    ) -> Option<PathChoice> {
        let links: Option<Vec<LinkId>> = hops
            .iter()
            .map(|&(a, b, k)| topo.find_link(a, b, k))
            .collect();
        let path = Path::new(topo, links?).ok()?;
        Some(PathChoice { path, resid_bps })
    }
}

/// Result of placing demand for a pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// The pair was idle (or new): it is now assigned to this path and
    /// rules must be (re)installed.
    Assign(Path),
    /// The pair already had outstanding bytes on an installed path; the
    /// new demand joins it, no rule churn.
    Keep,
    /// No candidate paths were offered (disconnected pair).
    NoPath,
}

#[derive(Debug, Clone)]
struct Assignment {
    path: Path,
    outstanding: u64,
}

/// The allocator: pair → path assignments plus per-link planned volume.
#[derive(Debug, Default)]
pub struct FlowAllocator {
    assignments: BTreeMap<(NodeId, NodeId), Assignment>,
    /// Outstanding predicted bytes planned per link.
    planned_link_bytes: BTreeMap<LinkId, u64>,
    /// Active pairs assigned per link (the size-blind load signal).
    planned_link_pairs: BTreeMap<LinkId, u64>,
    /// When false, placement ignores predicted volumes (FlowComb-like
    /// mode): load is counted in *pairs*, not bytes.
    size_blind: bool,
    /// New path assignments made (rule installs triggered).
    pub placements: u64,
    /// Demands stacked onto an already-active pair (no rule churn).
    pub keeps: u64,
}

impl FlowAllocator {
    /// A size-aware (full Pythia) allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A FlowComb-like allocator: sees that transfers exist, not how big
    /// they are.
    pub fn new_size_blind() -> Self {
        FlowAllocator {
            size_blind: true,
            ..Self::default()
        }
    }

    /// The load metric on one link, in the allocator's current units
    /// (bytes when size-aware, active-pair count scaled to a nominal
    /// transfer size when size-blind).
    fn link_load_metric(&self, l: LinkId) -> u64 {
        if self.size_blind {
            self.planned_link_pairs.get(&l).copied().unwrap_or(0)
        } else {
            self.planned_link_bytes.get(&l).copied().unwrap_or(0)
        }
    }

    /// The weight a new transfer contributes to the load metric.
    fn demand_metric(&self, bytes: u64) -> u64 {
        if self.size_blind {
            1
        } else {
            bytes
        }
    }

    /// Add `bytes` of predicted demand for `pair`, choosing a path if the
    /// pair is idle.
    pub fn place(
        &mut self,
        pair: (NodeId, NodeId),
        bytes: u64,
        candidates: &[PathChoice],
    ) -> Placement {
        if bytes == 0 {
            return Placement::Keep;
        }
        if let Some(a) = self.assignments.get_mut(&pair) {
            if a.outstanding > 0 {
                // Active pair: stack the demand on the installed path.
                a.outstanding += bytes;
                let path = a.path.clone();
                self.add_planned(&path, bytes);
                self.keeps += 1;
                return Placement::Keep;
            }
        }
        if candidates.is_empty() {
            return Placement::NoPath;
        }
        // Links shared by every candidate (the NIC access legs) carry the
        // transfer no matter what we choose; only the distinctive links
        // (the trunk choice) may enter the score, or a loaded shared leg
        // masks the difference and every tie falls onto the first trunk.
        let common: Vec<LinkId> = candidates[0]
            .path
            .links()
            .iter()
            .copied()
            .filter(|&l| candidates.iter().all(|c| c.path.contains_link(l)))
            .collect();
        // Pick the path finishing this transfer earliest over the links
        // the decision actually controls.
        let mut best: Option<(f64, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if c.resid_bps <= 0.0 {
                continue;
            }
            let planned = c
                .path
                .links()
                .iter()
                .filter(|l| !common.contains(l))
                .map(|l| self.link_load_metric(*l))
                .max()
                .unwrap_or(0);
            let eta = (planned + self.demand_metric(bytes)) as f64 * 8.0 / c.resid_bps;
            if best.map(|(b, _)| eta < b).unwrap_or(true) {
                best = Some((eta, i));
            }
        }
        // All candidates fully saturated by background: fall back to the
        // raw highest-residual path (index 0 if every residual is zero).
        let idx = match best {
            Some((_, i)) => i,
            None => candidates
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.resid_bps.total_cmp(&b.1.resid_bps))
                .map(|(i, _)| i)
                .unwrap(),
        };
        let path = candidates[idx].path.clone();
        self.add_planned(&path, bytes);
        self.add_pair_count(&path);
        self.assignments.insert(
            pair,
            Assignment {
                path: path.clone(),
                outstanding: bytes,
            },
        );
        self.placements += 1;
        Placement::Assign(path)
    }

    /// Re-evaluate an *active* pair after network conditions changed
    /// (background shift, link failure). Moves the pair — returning the
    /// new path — only when the best alternative finishes its remaining
    /// bytes at least `improvement` times faster than the current path
    /// would; hysteresis keeps rule churn bounded.
    pub fn reassign(
        &mut self,
        pair: (NodeId, NodeId),
        candidates: &[PathChoice],
        improvement: f64,
    ) -> Option<Path> {
        assert!(improvement >= 1.0);
        let (current, outstanding) = {
            let a = self.assignments.get(&pair)?;
            if a.outstanding == 0 {
                return None;
            }
            (a.path.clone(), a.outstanding)
        };
        // Score without this pair's own planned bytes.
        self.remove_planned(&current, outstanding);
        let common: Vec<LinkId> = if candidates.is_empty() {
            Vec::new()
        } else {
            candidates[0]
                .path
                .links()
                .iter()
                .copied()
                .filter(|&l| candidates.iter().all(|c| c.path.contains_link(l)))
                .collect()
        };
        let eta = |path: &Path, resid: f64| -> f64 {
            if resid <= 0.0 {
                return f64::INFINITY;
            }
            let planned = path
                .links()
                .iter()
                .filter(|l| !common.contains(l))
                .map(|l| self.link_load_metric(*l))
                .max()
                .unwrap_or(0);
            (planned + self.demand_metric(outstanding)) as f64 * 8.0 / resid
        };
        let current_eta = candidates
            .iter()
            .find(|c| c.path.links() == current.links())
            .map(|c| eta(&current, c.resid_bps))
            .unwrap_or(f64::INFINITY);
        let best = candidates
            .iter()
            .map(|c| (eta(&c.path, c.resid_bps), c))
            .min_by(|a, b| a.0.total_cmp(&b.0));
        let moved = match best {
            Some((best_eta, c))
                if c.path.links() != current.links()
                    && best_eta.is_finite()
                    && best_eta * improvement < current_eta =>
            {
                Some(c.path.clone())
            }
            _ => None,
        };
        match &moved {
            Some(path) => {
                self.add_planned(path, outstanding);
                self.remove_pair_count(&current);
                self.add_pair_count(path);
                self.assignments.insert(
                    pair,
                    Assignment {
                        path: path.clone(),
                        outstanding,
                    },
                );
                self.placements += 1;
            }
            None => {
                self.add_planned(&current, outstanding);
            }
        }
        moved
    }

    /// Active pairs (outstanding > 0), in deterministic order.
    pub fn active_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.assignments
            .iter()
            .filter(|(_, a)| a.outstanding > 0)
            .map(|(&p, _)| p)
            .collect()
    }

    /// A fetch belonging to `pair` completed; remove its predicted bytes
    /// from the plan.
    pub fn drain(&mut self, pair: (NodeId, NodeId), bytes: u64) {
        if let Some(a) = self.assignments.get_mut(&pair) {
            let drained = bytes.min(a.outstanding);
            a.outstanding -= drained;
            let went_idle = a.outstanding == 0;
            let path = a.path.clone();
            self.remove_planned(&path, drained);
            if went_idle {
                self.remove_pair_count(&path);
            }
        }
    }

    /// Forget a pair entirely (job teardown).
    pub fn remove_pair(&mut self, pair: (NodeId, NodeId)) {
        if let Some(a) = self.assignments.remove(&pair) {
            let path = a.path.clone();
            self.remove_planned(&path, a.outstanding);
            if a.outstanding > 0 {
                self.remove_pair_count(&path);
            }
        }
    }

    /// Current path assignment of a pair, if any.
    pub fn assigned_path(&self, pair: (NodeId, NodeId)) -> Option<&Path> {
        self.assignments.get(&pair).map(|a| &a.path)
    }

    /// Outstanding planned bytes for a pair.
    pub fn outstanding(&self, pair: (NodeId, NodeId)) -> u64 {
        self.assignments
            .get(&pair)
            .map(|a| a.outstanding)
            .unwrap_or(0)
    }

    /// Planned bytes at the path's most-loaded link.
    pub fn path_planned_bytes(&self, path: &Path) -> u64 {
        path.links()
            .iter()
            .map(|l| self.planned_link_bytes.get(l).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Outstanding predicted bytes currently planned across `link`.
    pub fn planned_bytes_on_link(&self, link: LinkId) -> u64 {
        self.planned_link_bytes.get(&link).copied().unwrap_or(0)
    }

    fn add_planned(&mut self, path: &Path, bytes: u64) {
        for &l in path.links() {
            *self.planned_link_bytes.entry(l).or_insert(0) += bytes;
        }
    }

    fn remove_planned(&mut self, path: &Path, bytes: u64) {
        for &l in path.links() {
            let v = self.planned_link_bytes.entry(l).or_insert(0);
            *v = v.saturating_sub(bytes);
        }
    }

    fn add_pair_count(&mut self, path: &Path) {
        for &l in path.links() {
            *self.planned_link_pairs.entry(l).or_insert(0) += 1;
        }
    }

    fn remove_pair_count(&mut self, path: &Path) {
        for &l in path.links() {
            let v = self.planned_link_pairs.entry(l).or_insert(0);
            *v = v.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_netsim::{build_multi_rack, MultiRack, MultiRackParams};

    /// Up to two candidate cross-rack paths (one per trunk) for a server
    /// pair. Trunks absent from the fabric (degraded or single-trunk
    /// topologies) yield fewer candidates rather than a panic.
    fn pair_candidates(
        mr: &MultiRack,
        src: usize,
        dst: usize,
        resid0: f64,
        resid1: f64,
    ) -> Vec<PathChoice> {
        let t = &mr.topology;
        let mk = |trunk: usize, resid: f64| {
            PathChoice::try_new(
                t,
                &[
                    (mr.servers[src], mr.tors[0], 0),
                    (mr.tors[0], mr.tors[1], trunk),
                    (mr.tors[1], mr.servers[dst], 0),
                ],
                resid,
            )
        };
        [mk(0, resid0), mk(1, resid1)]
            .into_iter()
            .flatten()
            .collect()
    }

    fn candidates(mr: &MultiRack, resid0: f64, resid1: f64) -> Vec<PathChoice> {
        pair_candidates(mr, 0, 5, resid0, resid1)
    }

    fn mr() -> MultiRack {
        build_multi_rack(&MultiRackParams::default())
    }

    fn pair(mr: &MultiRack) -> (NodeId, NodeId) {
        (mr.servers[0], mr.servers[5])
    }

    #[test]
    fn picks_highest_available_bandwidth_when_plan_empty() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let cands = candidates(&mr, 1e9, 5e9);
        match a.place(pair(&mr), 1_000_000, &cands) {
            Placement::Assign(p) => assert_eq!(p.links(), cands[1].path.links()),
            other => panic!("expected Assign, got {other:?}"),
        }
    }

    #[test]
    fn balances_load_across_equal_paths() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        // First pair goes somewhere; second pair must take the other trunk
        // (each pair has its own NIC legs; only the trunks are shared).
        let p1 = (mr.servers[0], mr.servers[5]);
        let p2 = (mr.servers[1], mr.servers[6]);
        let Placement::Assign(path1) =
            a.place(p1, 100_000_000, &pair_candidates(&mr, 0, 5, 1e9, 1e9))
        else {
            panic!()
        };
        let Placement::Assign(path2) =
            a.place(p2, 100_000_000, &pair_candidates(&mr, 1, 6, 1e9, 1e9))
        else {
            panic!()
        };
        assert_ne!(
            path1.links()[1],
            path2.links()[1],
            "equal-size transfers must spread across trunks"
        );
    }

    #[test]
    fn size_aware_packing_prefers_emptier_trunk() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        // Big transfer lands on some trunk.
        a.place(
            (mr.servers[0], mr.servers[5]),
            800_000_000,
            &pair_candidates(&mr, 0, 5, 1e9, 1e9),
        );
        // Two small ones should both prefer the other trunk (planned load
        // 800 MB vs 0/100 MB at the shared bottleneck).
        let Placement::Assign(p2) = a.place(
            (mr.servers[1], mr.servers[6]),
            100_000_000,
            &pair_candidates(&mr, 1, 6, 1e9, 1e9),
        ) else {
            panic!()
        };
        let Placement::Assign(p3) = a.place(
            (mr.servers[2], mr.servers[7]),
            100_000_000,
            &pair_candidates(&mr, 2, 7, 1e9, 1e9),
        ) else {
            panic!()
        };
        assert_eq!(p2.links()[1], p3.links()[1]);
        assert_ne!(
            p2.links()[1],
            a.assigned_path((mr.servers[0], mr.servers[5]))
                .unwrap()
                .links()[1]
        );
    }

    #[test]
    fn active_pair_keeps_its_path() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let cands = candidates(&mr, 1e9, 1e9);
        let p = pair(&mr);
        assert!(matches!(a.place(p, 100, &cands), Placement::Assign(_)));
        assert_eq!(a.place(p, 200, &cands), Placement::Keep);
        assert_eq!(a.outstanding(p), 300);
    }

    #[test]
    fn drained_pair_can_be_reassigned() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let cands = candidates(&mr, 1e9, 1e9);
        let p = pair(&mr);
        a.place(p, 100, &cands);
        a.drain(p, 100);
        assert_eq!(a.outstanding(p), 0);
        // Now idle: a new demand re-places (possibly on a new path).
        assert!(matches!(a.place(p, 50, &cands), Placement::Assign(_)));
    }

    #[test]
    fn drain_clears_planned_link_bytes() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let cands = candidates(&mr, 1e9, 1e9);
        let p = pair(&mr);
        let Placement::Assign(path) = a.place(p, 500, &cands) else {
            panic!()
        };
        let trunk = path.links()[1];
        assert_eq!(a.planned_bytes_on_link(trunk), 500);
        a.drain(p, 500);
        assert_eq!(a.planned_bytes_on_link(trunk), 0);
    }

    #[test]
    fn zero_residual_falls_back_not_crashes() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let cands = candidates(&mr, 0.0, 0.0);
        assert!(matches!(
            a.place(pair(&mr), 100, &cands),
            Placement::Assign(_)
        ));
    }

    #[test]
    fn no_candidates_reports_no_path() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        assert_eq!(a.place(pair(&mr), 100, &[]), Placement::NoPath);
    }

    #[test]
    fn reassign_moves_pair_off_congested_path() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p = pair(&mr);
        // Placed when both trunks were free; trunk of the chosen path then
        // collapses to 50 Mb/s while the other has 950 Mb/s.
        let Placement::Assign(path0) = a.place(p, 1_000_000, &candidates(&mr, 1e9, 1e9)) else {
            panic!()
        };
        let on_first = path0.links() == candidates(&mr, 1.0, 2.0)[0].path.links();
        let cands = if on_first {
            candidates(&mr, 0.05e9, 0.95e9)
        } else {
            candidates(&mr, 0.95e9, 0.05e9)
        };
        let moved = a.reassign(p, &cands, 1.5).expect("must move");
        assert_ne!(moved.links()[1], path0.links()[1]);
        // Planned bytes follow the move.
        assert_eq!(a.planned_bytes_on_link(path0.links()[1]), 0);
        assert_eq!(a.planned_bytes_on_link(moved.links()[1]), 1_000_000);
    }

    #[test]
    fn reassign_hysteresis_keeps_minor_differences() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p = pair(&mr);
        a.place(p, 1_000_000, &candidates(&mr, 1e9, 1e9));
        // 20% better alternative: below the 1.5x bar, stay put.
        let moved = a.reassign(p, &candidates(&mr, 1e9, 1.2e9), 1.5);
        let moved2 = a.reassign(p, &candidates(&mr, 1.2e9, 1e9), 1.5);
        assert!(moved.is_none() || moved2.is_none());
    }

    #[test]
    fn reassign_ignores_idle_and_unknown_pairs() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p = pair(&mr);
        assert!(a.reassign(p, &candidates(&mr, 1e9, 1e9), 1.5).is_none());
        a.place(p, 100, &candidates(&mr, 1e9, 1e9));
        a.drain(p, 100);
        assert!(a.reassign(p, &candidates(&mr, 0.01e9, 1e9), 1.5).is_none());
    }

    #[test]
    fn active_pairs_lists_only_outstanding() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let p1 = (mr.servers[0], mr.servers[5]);
        let p2 = (mr.servers[1], mr.servers[6]);
        a.place(p1, 100, &pair_candidates(&mr, 0, 5, 1e9, 1e9));
        a.place(p2, 100, &pair_candidates(&mr, 1, 6, 1e9, 1e9));
        a.drain(p2, 100);
        assert_eq!(a.active_pairs(), vec![p1]);
    }

    #[test]
    fn single_trunk_fabric_yields_one_candidate_not_a_panic() {
        // Regression: the candidate builder used to unwrap find_link for
        // trunk index 1 and panicked on any non-dumbbell fabric.
        let mr = build_multi_rack(&MultiRackParams {
            trunk_count: 1,
            ..MultiRackParams::default()
        });
        let cands = pair_candidates(&mr, 0, 5, 1e9, 1e9);
        assert_eq!(cands.len(), 1);
        let mut a = FlowAllocator::new();
        assert!(matches!(
            a.place((mr.servers[0], mr.servers[5]), 100, &cands),
            Placement::Assign(_)
        ));
    }

    #[test]
    fn try_new_rejects_missing_and_discontinuous_hops() {
        let mr = mr();
        let t = &mr.topology;
        // Parallel index past the trunk count: no such link.
        assert!(PathChoice::try_new(t, &[(mr.tors[0], mr.tors[1], 9)], 1e9).is_none());
        // Hops that do not chain: invalid path.
        assert!(PathChoice::try_new(
            t,
            &[
                (mr.servers[0], mr.tors[0], 0),
                (mr.tors[1], mr.servers[5], 0),
            ],
            1e9,
        )
        .is_none());
        // A well-formed hop list still resolves.
        assert!(PathChoice::try_new(
            t,
            &[
                (mr.servers[0], mr.tors[0], 0),
                (mr.tors[0], mr.tors[1], 0),
                (mr.tors[1], mr.servers[5], 0),
            ],
            1e9,
        )
        .is_some());
    }

    #[test]
    fn zero_bytes_is_a_noop() {
        let mr = mr();
        let mut a = FlowAllocator::new();
        let cands = candidates(&mr, 1e9, 1e9);
        assert_eq!(a.place(pair(&mr), 0, &cands), Placement::Keep);
        assert_eq!(a.outstanding(pair(&mr)), 0);
    }
}
