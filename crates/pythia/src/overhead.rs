//! Application-layer → wire-level volume conversion.
//!
//! Pythia's instrumentation works at the application layer: it sees
//! key/value payload bytes in the spill index. What NetFlow (and the
//! network) sees is payload *plus protocol overhead* — TCP/IP/Ethernet
//! headers per segment, connection handshakes, retransmissions. The paper
//! reports that Pythia's header-size-based correction **over-estimates
//! wire volume by 3–7%** and never under-estimates (§V-C, Figure 5) —
//! over-estimation is the safe direction for capacity planning.
//!
//! We reproduce both sides:
//! * [`predicted_wire_bytes`] — Pythia's deliberately conservative
//!   standard-MTU model (every segment carries full header overhead, plus
//!   a retransmission allowance);
//! * [`actual_wire_factor`] — the "ground truth" the simulated network
//!   carries, where TSO/GSO, jumbo-ish effective segments and clean links
//!   keep real overhead lower, varying per flow.

use pythia_des::splitmix64;

/// TCP maximum segment size on a standard 1500-byte MTU.
pub const MSS: u64 = 1448; // 1500 - 20 IP - 20 TCP - 12 options

/// Per-segment header bytes Pythia's predictor charges: 20 IP + 32 TCP
/// (with timestamps) + 14 Ethernet + 4 FCS + 8 preamble + 12 IFG.
pub const PREDICTOR_HEADER_BYTES: u64 = 90;

/// Conservative allowance for handshakes and retransmissions (fraction of
/// payload).
pub const PREDICTOR_RETRANSMIT_ALLOWANCE: f64 = 0.01;

/// Pythia's wire-volume prediction for `app_bytes` of map output.
pub fn predicted_wire_bytes(app_bytes: u64) -> u64 {
    let factor = predictor_factor();
    (app_bytes as f64 * factor).ceil() as u64
}

/// The predictor's multiplicative overhead factor (≈ 1.072).
pub fn predictor_factor() -> f64 {
    1.0 + PREDICTOR_HEADER_BYTES as f64 / MSS as f64 + PREDICTOR_RETRANSMIT_ALLOWANCE
}

/// Bounds of the *actual* per-flow overhead factor. Large shuffle
/// transfers ride segmentation offload: the effective segment the host
/// pays headers on is several MSS long, so true overhead is well below
/// the predictor's worst case.
pub const ACTUAL_OVERHEAD_MIN: f64 = 0.005;
/// Upper bound of the actual per-flow overhead fraction.
pub const ACTUAL_OVERHEAD_MAX: f64 = 0.035;

/// Deterministic actual wire factor for one fetch, keyed by (map, reducer,
/// seed). The same fetch always carries the same overhead; different
/// fetches vary within `[ACTUAL_OVERHEAD_MIN, ACTUAL_OVERHEAD_MAX]`.
pub fn actual_wire_factor(map_index: u32, reducer_index: u32, seed: u64) -> f64 {
    let h = splitmix64(seed ^ ((map_index as u64) << 32) ^ reducer_index as u64);
    let u = h as f64 / u64::MAX as f64;
    1.0 + ACTUAL_OVERHEAD_MIN + u * (ACTUAL_OVERHEAD_MAX - ACTUAL_OVERHEAD_MIN)
}

/// Actual bytes on the wire for one fetch of `app_bytes`.
pub fn actual_wire_bytes(app_bytes: u64, map_index: u32, reducer_index: u32, seed: u64) -> u64 {
    (app_bytes as f64 * actual_wire_factor(map_index, reducer_index, seed)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_factor_in_expected_band() {
        let f = predictor_factor();
        assert!(f > 1.05 && f < 1.09, "factor {f}");
    }

    #[test]
    fn prediction_never_lags_actual() {
        // The core §V-C property: "Pythia was always able to never lag the
        // actual traffic measurement" — prediction ≥ actual, always.
        for map in 0..50u32 {
            for reducer in 0..8u32 {
                let app = 10_000_000 + map as u64 * 13_337;
                let pred = predicted_wire_bytes(app);
                let act = actual_wire_bytes(app, map, reducer, 42);
                assert!(pred >= act, "map {map} r {reducer}: {pred} < {act}");
            }
        }
    }

    #[test]
    fn overestimate_in_three_to_seven_percent_band() {
        // Aggregate over many fetches: the paper's measured 3–7% band.
        let mut total_pred = 0u64;
        let mut total_act = 0u64;
        for map in 0..200u32 {
            for reducer in 0..10u32 {
                let app = 5_000_000;
                total_pred += predicted_wire_bytes(app);
                total_act += actual_wire_bytes(app, map, reducer, 7);
            }
        }
        let over = total_pred as f64 / total_act as f64 - 1.0;
        assert!(
            (0.03..=0.07).contains(&over),
            "aggregate over-estimate {over} outside [3%, 7%]"
        );
    }

    #[test]
    fn actual_factor_deterministic_and_bounded() {
        for map in 0..20u32 {
            let a = actual_wire_factor(map, 3, 9);
            let b = actual_wire_factor(map, 3, 9);
            assert_eq!(a, b);
            assert!((1.0 + ACTUAL_OVERHEAD_MIN..=1.0 + ACTUAL_OVERHEAD_MAX).contains(&a));
        }
        assert_ne!(actual_wire_factor(0, 0, 1), actual_wire_factor(1, 0, 1));
    }

    #[test]
    fn zero_bytes_predict_zero() {
        assert_eq!(predicted_wire_bytes(0), 0);
        assert_eq!(actual_wire_bytes(0, 1, 2, 3), 0);
    }
}
