//! The per-server instrumentation middleware.
//!
//! Runs on every Hadoop slave, fully transparent to Hadoop and the
//! application (§III): it subscribes to filesystem notifications on the
//! tasktracker's intermediate-output directory, and whenever a spill index
//! file appears (i.e. a map task just finished) it decodes the file,
//! converts per-reducer payload sizes to predicted wire volumes, and ships
//! a [`PredictionMsg`] to the central collector over the management
//! network.
//!
//! In the simulation, the "filesystem notification" is the engine calling
//! [`Instrumentation::on_spill`] with the encoded index file produced by
//! the Hadoop simulator — the same bytes a real middleware would read off
//! disk.

use pythia_des::SimTime;
use pythia_hadoop::{IndexError, IndexFile, JobId, MapTaskId, ServerId};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};

use crate::overhead::predicted_wire_bytes;

/// A shuffle-intent prediction, as serialized to the collector: which map
/// task finished, where it ran, and how many wire bytes each reducer will
/// eventually fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictionMsg {
    /// The job the finished map belongs to.
    pub job: JobId,
    /// The finished map task.
    pub map: MapTaskId,
    /// The server that produced the output.
    pub src_server: ServerId,
    /// Predicted wire bytes per reducer index.
    pub per_reducer_bytes: Vec<u64>,
    /// When the middleware produced the prediction (spill time).
    pub predicted_at: SimTime,
}

impl PredictionMsg {
    /// Total predicted wire bytes across all reducers.
    pub fn total_bytes(&self) -> u64 {
        self.per_reducer_bytes.iter().sum()
    }
}

/// Predictions ride inside checkpointed in-flight events (a message can
/// be on the management network when the snapshot is cut).
impl Persist for PredictionMsg {
    fn put(&self, w: &mut SectionWriter) {
        self.job.put(w);
        self.map.put(w);
        self.src_server.put(w);
        self.per_reducer_bytes.put(w);
        self.predicted_at.put(w);
    }
    fn get(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        Ok(PredictionMsg {
            job: JobId::get(r)?,
            map: MapTaskId::get(r)?,
            src_server: ServerId::get(r)?,
            per_reducer_bytes: Vec::<u64>::get(r)?,
            predicted_at: SimTime::get(r)?,
        })
    }
}

/// Per-server middleware state: decode spills, count work done (for the
/// §V-C overhead model).
#[derive(Debug)]
pub struct Instrumentation {
    server: ServerId,
    /// Spills decoded so far (drives the overhead spike model).
    pub spills_decoded: u64,
    /// Total bytes of index files parsed.
    pub index_bytes_parsed: u64,
}

impl Instrumentation {
    /// Middleware instance for one tasktracker server.
    pub fn new(server: ServerId) -> Self {
        Instrumentation {
            server,
            spills_decoded: 0,
            index_bytes_parsed: 0,
        }
    }

    /// The server this middleware watches.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Serialize the decode counters (the server id is scenario
    /// configuration and is validated, not restored).
    pub fn put_state(&self, w: &mut SectionWriter) {
        self.server.put(w);
        self.spills_decoded.put(w);
        self.index_bytes_parsed.put(w);
    }

    /// Restore the decode counters onto a freshly constructed middleware.
    pub fn restore_state(&mut self, r: &mut SectionReader) -> Result<(), SnapshotError> {
        let server = ServerId::get(r)?;
        if server != self.server {
            return Err(r.malformed(format!(
                "instrumentation snapshot for {server}, restoring onto {}",
                self.server
            )));
        }
        self.spills_decoded = u64::get(r)?;
        self.index_bytes_parsed = u64::get(r)?;
        Ok(())
    }

    /// Filesystem notification: a spill index for `map` appeared. Decode
    /// it and emit the prediction.
    pub fn on_spill(
        &mut self,
        now: SimTime,
        job: JobId,
        map: MapTaskId,
        data: &[u8],
    ) -> Result<PredictionMsg, IndexError> {
        let index = IndexFile::decode(data)?;
        self.spills_decoded += 1;
        self.index_bytes_parsed += data.len() as u64;
        let per_reducer_bytes = (0..index.num_partitions())
            .map(|r| predicted_wire_bytes(index.partition_bytes(r)))
            .collect();
        Ok(PredictionMsg {
            job,
            map,
            src_server: self.server,
            per_reducer_bytes,
            predicted_at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::predictor_factor;

    #[test]
    fn decodes_spill_and_applies_overhead() {
        let mut inst = Instrumentation::new(ServerId(3));
        let index = IndexFile::from_partition_sizes(&[1_000_000, 0, 250_000], 1.0);
        let msg = inst
            .on_spill(
                SimTime::from_secs(5),
                JobId(0),
                MapTaskId(7),
                &index.encode(),
            )
            .unwrap();
        assert_eq!(msg.map, MapTaskId(7));
        assert_eq!(msg.src_server, ServerId(3));
        assert_eq!(msg.predicted_at, SimTime::from_secs(5));
        assert_eq!(msg.per_reducer_bytes.len(), 3);
        // Prediction = payload × predictor factor, per reducer.
        let f = predictor_factor();
        assert_eq!(msg.per_reducer_bytes[0], (1_000_000.0 * f).ceil() as u64);
        assert_eq!(msg.per_reducer_bytes[1], 0);
        assert_eq!(msg.per_reducer_bytes[2], (250_000.0 * f).ceil() as u64);
        assert_eq!(inst.spills_decoded, 1);
    }

    #[test]
    fn corrupt_index_is_an_error_not_a_prediction() {
        let mut inst = Instrumentation::new(ServerId(0));
        let mut data = IndexFile::from_partition_sizes(&[100], 1.0)
            .encode()
            .to_vec();
        data[15] ^= 0xff;
        assert!(inst
            .on_spill(SimTime::ZERO, JobId(0), MapTaskId(0), &data)
            .is_err());
        assert_eq!(inst.spills_decoded, 0, "failed decode must not count");
    }

    #[test]
    fn total_bytes_sums_reducers() {
        let mut inst = Instrumentation::new(ServerId(0));
        let index = IndexFile::from_partition_sizes(&[10_000, 20_000], 1.0);
        let msg = inst
            .on_spill(SimTime::ZERO, JobId(0), MapTaskId(0), &index.encode())
            .unwrap();
        assert_eq!(
            msg.total_bytes(),
            msg.per_reducer_bytes[0] + msg.per_reducer_bytes[1]
        );
    }
}
