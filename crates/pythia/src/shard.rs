//! Per-pod sharding of the Pythia control plane.
//!
//! A single [`PythiaSystem`] aggregates every prediction in the fleet
//! through one collector and one allocator. That is faithful to the
//! paper's 10-server testbed, but on a 1024-server Clos the collector
//! becomes a serialization point: every spill, every reducer launch and
//! every fetch completion funnels through one component whose working
//! set spans the whole fabric.
//!
//! [`ShardedPythia`] splits the control plane by *pod* (the natural
//! fault/locality domain of a fat-tree; rack for leaf fabrics). Each
//! shard is a complete `PythiaSystem` over the full topology, but only
//! ever sees the predictions whose **source server** lives in its pods —
//! so its collector maps, parked-prediction sets and allocator plans
//! stay pod-sized. Under the default `ServerPair` aggregation every
//! prediction for a pair originates at the pair's source server, so a
//! pair's entire lifecycle (prediction → park → demand → placement →
//! drain) is owned by exactly one shard and no cross-shard merge is
//! needed.
//!
//! Routing summary:
//!
//! * **routed by source pod** — `on_spill`, `on_prediction_delivered`,
//!   `on_fetch_completed`, `predicted_curve`, `spills_decoded`;
//! * **broadcast** — `on_reducer_launched` (a job's maps span pods, so
//!   every shard must learn reducer locations to un-park its own
//!   predictions), `on_background_update`, controller up/down/restart,
//!   background refreshes, trace handles;
//! * **aggregated** — `stats()`, collector degradation counters,
//!   `expire_parked`.
//!
//! Each shard keeps its own residual table; placements made by one shard
//! are not visible in another's residuals (background load, which is
//! broadcast, is). That is the deliberate trade-off of sharding — the
//! same one a per-pod controller deployment would make — and with
//! `shards == 1` it vanishes: every call degenerates to a direct
//! delegation, byte-identical to the unsharded system.

use crate::instrument::PredictionMsg;
use crate::scheduler::{PythiaConfig, PythiaStats, PythiaSystem};
use pythia_des::SimTime;
use pythia_hadoop::{JobId, MapTaskId, ReducerId, ServerId};
use pythia_netsim::{CumulativeCurve, NodeId, Topology};
use pythia_openflow::{Controller, PendingRule};
use pythia_snapshot::{Persist, SectionReader, SectionWriter, SnapshotError};
use pythia_trace::Trace;

/// Aggregated collector degradation counters across every shard
/// (mirrors the per-collector public fields the engine reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorTotals {
    /// Duplicate prediction deliveries dropped.
    pub duplicates_dropped: u64,
    /// Map re-execution retractions applied.
    pub retractions: u64,
    /// Malformed prediction payloads dropped.
    pub malformed_dropped: u64,
    /// Parked predictions expired by the TTL sweep.
    pub parked_expired: u64,
}

/// Pod-sharded Pythia control plane: `shards[pod % n]` owns every
/// prediction whose source server lives in that pod.
///
/// With one shard this is a zero-cost wrapper around [`PythiaSystem`]
/// (same call sequence, same state, same rule streams).
pub struct ShardedPythia {
    shards: Vec<PythiaSystem>,
    /// `pod_of_server[s]` — pod (or rack) index of Hadoop server `s`.
    pod_of_server: Vec<u32>,
}

impl ShardedPythia {
    /// Build `num_shards` complete Pythia systems over the same fabric.
    /// `pod_of_server[i]` assigns Hadoop server `i` to its pod; servers
    /// route to `shards[pod % num_shards]`.
    pub fn new(
        cfg: PythiaConfig,
        topo: &Topology,
        server_nodes: Vec<NodeId>,
        pod_of_server: Vec<u32>,
        num_shards: usize,
    ) -> Self {
        assert!(num_shards >= 1, "at least one collector shard");
        assert_eq!(
            pod_of_server.len(),
            server_nodes.len(),
            "one pod id per server"
        );
        let shards = (0..num_shards)
            .map(|_| PythiaSystem::new(cfg.clone(), topo, server_nodes.clone()))
            .collect();
        ShardedPythia {
            shards,
            pod_of_server,
        }
    }

    /// Number of shards in force.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning `server`'s predictions.
    pub fn shard_of(&self, server: ServerId) -> usize {
        self.pod_of_server[server.0 as usize] as usize % self.shards.len()
    }

    /// Attach a flight-recorder handle to every shard.
    pub fn set_trace(&mut self, trace: Trace) {
        for sh in &mut self.shards {
            sh.set_trace(trace.clone());
        }
    }

    /// Bulk background refresh, broadcast so every shard's path scoring
    /// sees the same fabric load.
    pub fn set_background_from(&mut self, loads: &[f64]) {
        for sh in &mut self.shards {
            sh.set_background_from(loads);
        }
    }

    /// Spill-index hook, routed to the source server's shard.
    pub fn on_spill(
        &mut self,
        now: SimTime,
        job: JobId,
        map: MapTaskId,
        server: ServerId,
        data: &[u8],
    ) -> Option<(PredictionMsg, SimTime)> {
        let s = self.shard_of(server);
        self.shards[s].on_spill(now, job, map, server, data)
    }

    /// Prediction arrival at the collector, routed by the message's
    /// source server (the same shard its `on_spill` ran in).
    pub fn on_prediction_delivered(
        &mut self,
        now: SimTime,
        msg: &PredictionMsg,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        let s = self.shard_of(msg.src_server);
        self.shards[s].on_prediction_delivered(now, msg, controller)
    }

    /// Reducer placement, broadcast: parked predictions for this job may
    /// sit in any shard whose pods ran the job's maps. Rule batches are
    /// concatenated in shard order (deterministic).
    pub fn on_reducer_launched(
        &mut self,
        now: SimTime,
        job: JobId,
        reducer: ReducerId,
        server: ServerId,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        let mut rules = Vec::new();
        for sh in &mut self.shards {
            rules.extend(sh.on_reducer_launched(now, job, reducer, server, controller));
        }
        rules
    }

    /// Fetch completion, routed by the fetch's source server.
    pub fn on_fetch_completed(
        &mut self,
        job: JobId,
        map: MapTaskId,
        reducer: ReducerId,
        src: ServerId,
        dst: ServerId,
    ) {
        let s = self.shard_of(src);
        self.shards[s].on_fetch_completed(job, map, reducer, src, dst);
    }

    /// Link-load refresh + re-placement sweep, broadcast; each shard
    /// re-evaluates only its own placements.
    pub fn on_background_update(
        &mut self,
        now: SimTime,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        let mut rules = Vec::new();
        for sh in &mut self.shards {
            rules.extend(sh.on_background_update(now, controller));
        }
        rules
    }

    /// The SDN controller crashed — every shard stops issuing rules.
    pub fn set_controller_down(&mut self) {
        for sh in &mut self.shards {
            sh.set_controller_down();
        }
    }

    /// Whether rule installation is currently possible.
    pub fn controller_is_up(&self) -> bool {
        self.shards[0].controller_is_up()
    }

    /// Controller restart resync, broadcast; each shard re-derives the
    /// rules for the pairs it owns.
    pub fn on_controller_restart(
        &mut self,
        now: SimTime,
        controller: &mut Controller,
    ) -> Vec<PendingRule> {
        let mut rules = Vec::new();
        for sh in &mut self.shards {
            rules.extend(sh.on_controller_restart(now, controller));
        }
        rules
    }

    /// TTL sweep over parked predictions in every shard; total expired.
    pub fn expire_parked(&mut self, now: SimTime) -> usize {
        self.shards.iter_mut().map(|sh| sh.expire_parked(now)).sum()
    }

    /// Predicted cumulative remote-traffic curve for server `server`
    /// hosted on `node`, read from the shard that owns its predictions.
    pub fn predicted_curve(&self, server: ServerId, node: NodeId) -> Option<&CumulativeCurve> {
        self.shards[self.shard_of(server)].predicted_curve(node)
    }

    /// Per-server spill-decode count, read from the owning shard.
    pub fn spills_decoded(&self, server: ServerId) -> u64 {
        self.shards[self.shard_of(server)].spills_decoded(server)
    }

    /// Parked (unknown-reducer) prediction entries, fleet-wide.
    pub fn parked_predictions(&self) -> usize {
        self.shards.iter().map(|sh| sh.parked_predictions()).sum()
    }

    /// Run statistics summed across shards.
    pub fn stats(&self) -> PythiaStats {
        let mut total = PythiaStats::default();
        for sh in &self.shards {
            let s = &sh.stats;
            total.predictions_sent += s.predictions_sent;
            total.demands_aggregated += s.demands_aggregated;
            total.paths_assigned += s.paths_assigned;
            total.rules_issued += s.rules_issued;
            total.demands_deferred += s.demands_deferred;
            total.rules_reinstalled += s.rules_reinstalled;
            total.controller_resyncs += s.controller_resyncs;
            total.demands_no_path += s.demands_no_path;
        }
        total
    }

    /// Collector degradation counters summed across shards.
    pub fn collector_totals(&self) -> CollectorTotals {
        let mut t = CollectorTotals::default();
        for sh in &self.shards {
            let c = sh.collector();
            t.duplicates_dropped += c.duplicates_dropped;
            t.retractions += c.retractions;
            t.malformed_dropped += c.malformed_dropped;
            t.parked_expired += c.parked_expired;
        }
        t
    }

    /// Direct access to a shard (tests/diagnostics).
    pub fn shard(&self, i: usize) -> &PythiaSystem {
        &self.shards[i]
    }

    /// Serialize every shard, count-prefixed. Pod assignment is scenario
    /// wiring (recomputed from the topology at construction), not state.
    pub fn put_state(&self, w: &mut SectionWriter) {
        (self.shards.len() as u64).put(w);
        for sh in &self.shards {
            sh.put_state(w);
        }
    }

    /// Restore onto a freshly constructed sharded system for the same
    /// scenario (shard-count mismatches surface as typed errors).
    pub fn restore_state(
        &mut self,
        topo: &Topology,
        r: &mut SectionReader,
    ) -> Result<(), SnapshotError> {
        let n = u64::get(r)? as usize;
        if n != self.shards.len() {
            return Err(r.malformed(format!(
                "snapshot has {n} collector shards, scenario has {}",
                self.shards.len()
            )));
        }
        for sh in &mut self.shards {
            sh.restore_state(topo, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_netsim::{build_multi_rack, MultiRackParams};

    fn rig(num_shards: usize) -> (ShardedPythia, Controller) {
        let mr = build_multi_rack(&MultiRackParams::default());
        let pods: Vec<u32> = mr
            .servers
            .iter()
            .map(|&n| mr.topology.node(n).rack().unwrap_or(0))
            .collect();
        let sys = ShardedPythia::new(
            PythiaConfig::default(),
            &mr.topology,
            mr.servers.clone(),
            pods,
            num_shards,
        );
        let ctl = Controller::new(
            mr.topology.clone(),
            pythia_openflow::ControllerConfig::default(),
            &pythia_des::RngFactory::new(7),
        );
        (sys, ctl)
    }

    #[test]
    fn shard_routing_follows_pods() {
        let (sys, _) = rig(2);
        // Default multi-rack: 2 racks x 5 servers, rack-major order.
        assert_eq!(sys.shard_of(ServerId(0)), 0);
        assert_eq!(sys.shard_of(ServerId(4)), 0);
        assert_eq!(sys.shard_of(ServerId(5)), 1);
        assert_eq!(sys.shard_of(ServerId(9)), 1);
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let (sys, _) = rig(1);
        for s in 0..10u32 {
            assert_eq!(sys.shard_of(ServerId(s)), 0);
        }
    }

    #[test]
    fn stats_and_totals_aggregate_over_shards() {
        let (sys, _) = rig(3);
        assert_eq!(sys.num_shards(), 3);
        assert_eq!(sys.stats(), PythiaStats::default());
        assert_eq!(sys.collector_totals(), CollectorTotals::default());
        assert_eq!(sys.parked_predictions(), 0);
    }
}
