#![warn(missing_docs)]

//! `pythia-core` — the paper's primary contribution.
//!
//! Pythia (IPDPS 2014) accelerates Hadoop MapReduce by predicting shuffle
//! transfers at runtime and programming the SDN data network before the
//! flows start:
//!
//! * [`instrument`] — the transparent per-server middleware that decodes
//!   spill index files into per-reducer shuffle predictions;
//! * [`overhead`] — application-layer → wire-volume conversion (the
//!   source of the paper's 3–7% conservative over-estimate);
//! * [`mgmtnet`] — the management-network channel model (loss,
//!   duplication, jitter) with agent-side retry and exponential backoff;
//! * [`collector`] — central aggregation into server-pair transfers, with
//!   parked predictions for not-yet-scheduled reducers, idempotent under
//!   re-delivery and map re-execution;
//! * [`allocator`] — the first-fit bin-packing path allocator
//!   ("assign each aggregated flow to the path with the highest available
//!   bandwidth", size-aware, background-differentiated);
//! * [`scheduler`] — [`scheduler::PythiaSystem`], the facade the cluster
//!   engine drives;
//! * [`middleware_cost`] — the §V-C dc + spike overhead model.
//!
//! The instrumentation path in isolation — decode a spill index into a
//! wire-volume prediction:
//!
//! ```
//! use pythia_core::{Instrumentation, overhead};
//! use pythia_des::SimTime;
//! use pythia_hadoop::{IndexFile, JobId, MapTaskId, ServerId};
//!
//! let mut middleware = Instrumentation::new(ServerId(3));
//! // Hadoop wrote a spill with two reducer partitions.
//! let index = IndexFile::from_partition_sizes(&[10_000_000, 2_000_000], 1.0);
//! let msg = middleware
//!     .on_spill(SimTime::from_secs(42), JobId(0), MapTaskId(7), &index.encode())
//!     .unwrap();
//! // Predicted wire volume = payload x conservative protocol overhead.
//! assert_eq!(msg.per_reducer_bytes[0], overhead::predicted_wire_bytes(10_000_000));
//! assert!(msg.per_reducer_bytes[0] > 10_000_000);
//! ```

pub mod allocator;
pub mod collector;
pub mod instrument;
pub mod mgmtnet;
pub mod middleware_cost;
pub mod overhead;
pub mod residual;
pub mod scheduler;
pub mod shard;

pub use allocator::{resolve_hops, FlowAllocator, Placement};
pub use collector::{AggregatedDemand, Collector, PredictionOutcome, UnknownServer};
pub use instrument::{Instrumentation, PredictionMsg};
pub use mgmtnet::{MgmtNet, MgmtNetConfig, MgmtNetStats};
pub use middleware_cost::MiddlewareCostModel;
pub use residual::ResidualTable;
pub use scheduler::{AggregationPolicy, AllocationMode, PythiaConfig, PythiaStats, PythiaSystem};
pub use shard::{CollectorTotals, ShardedPythia};
