//! Instrumentation overhead model (§V-C).
//!
//! The paper reports per-server middleware overhead of **2–5% CPU/IO**
//! with insignificant memory, decomposed into "a constant dc factor
//! stemming from continuous monitoring of MapReduce task progress and a
//! spike factor stemming from index file analysis at the event of a map
//! task finish". Lacking their hardware, we model (not measure) exactly
//! that decomposition; the overhead experiment reproduces the reported
//! band from observed spill counts, spill sizes and job duration.
//!
//! The spike cost scales with the amount of intermediate output analysed:
//! Pythia performs "deep Hadoop index/sequence file analysis" (§VI), so a
//! 256 MB sort spill costs more than a 38 MB Nutch spill.

use pythia_des::SimDuration;

/// The dc + spike overhead model.
#[derive(Debug, Clone)]
pub struct MiddlewareCostModel {
    /// Constant monitoring cost as a CPU fraction (the "dc factor").
    pub monitor_dc_frac: f64,
    /// Fixed CPU time per spill event (notification handling, index
    /// decode — the index itself is tiny).
    pub decode_base: SimDuration,
    /// CPU seconds per byte of intermediate output analysed (sequence-file
    /// scan). 0.4 s/GB ≈ a single-core pass at 2.5 GB/s.
    pub analysis_secs_per_byte: f64,
}

impl Default for MiddlewareCostModel {
    fn default() -> Self {
        MiddlewareCostModel {
            monitor_dc_frac: 0.02,
            decode_base: SimDuration::from_millis(20),
            analysis_secs_per_byte: 0.4e-9,
        }
    }
}

impl MiddlewareCostModel {
    /// Average CPU overhead fraction on a server that processed `spills`
    /// map finishes of `avg_spill_bytes` intermediate output each, over a
    /// `window` of wall-clock time.
    pub fn overhead_fraction(&self, spills: u64, avg_spill_bytes: u64, window: SimDuration) -> f64 {
        assert!(window > SimDuration::ZERO, "empty observation window");
        let per_spill =
            self.decode_base.as_secs_f64() + avg_spill_bytes as f64 * self.analysis_secs_per_byte;
        let spike = spills as f64 * per_spill / window.as_secs_f64();
        self.monitor_dc_frac + spike
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_pays_only_dc() {
        let m = MiddlewareCostModel::default();
        let f = m.overhead_fraction(0, 0, SimDuration::from_secs(100));
        assert_eq!(f, 0.02);
    }

    #[test]
    fn sort_scale_lands_in_paper_band() {
        let m = MiddlewareCostModel::default();
        // ≈94 spills of 256 MB each, over a ≈535 s sort job.
        let f = m.overhead_fraction(94, 256_000_000, SimDuration::from_secs(535));
        assert!((0.02..=0.05).contains(&f), "overhead {f}");
    }

    #[test]
    fn nutch_scale_lands_in_paper_band() {
        let m = MiddlewareCostModel::default();
        // ≈25 small spills (38 MB) over a ≈42 s job.
        let f = m.overhead_fraction(25, 38_000_000, SimDuration::from_secs(42));
        assert!((0.02..=0.05).contains(&f), "overhead {f}");
    }

    #[test]
    fn overhead_scales_with_spill_rate_and_size() {
        let m = MiddlewareCostModel::default();
        let w = SimDuration::from_secs(1000);
        assert!(m.overhead_fraction(100, 1_000_000, w) > m.overhead_fraction(10, 1_000_000, w));
        assert!(m.overhead_fraction(10, 100_000_000, w) > m.overhead_fraction(10, 1_000_000, w));
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        MiddlewareCostModel::default().overhead_fraction(1, 1, SimDuration::ZERO);
    }
}
